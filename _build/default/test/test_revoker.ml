(* Quarantine-and-sweep revocation: after a sweep, no capability to a freed
   region survives anywhere in the system. *)

open Driver

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cap base len =
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
  | Ok c -> c
  | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)

let make () =
  let mem = Tagmem.Mem.create ~size:(1 lsl 18) in
  (mem, Revoker.create mem)

let test_quarantine_accounting () =
  let _, r = make () in
  checki "empty" 0 (Revoker.quarantined_bytes r);
  Revoker.quarantine r ~base:0x1000 ~size:256;
  Revoker.quarantine r ~base:0x4000 ~size:64;
  checki "tracked" 320 (Revoker.quarantined_bytes r);
  checkb "overlap detected" true (Revoker.overlaps r ~base:0x10f0 ~top:0x1200);
  checkb "disjoint clean" false (Revoker.overlaps r ~base:0x2000 ~top:0x3000)

let test_sweep_revokes_overlapping_caps () =
  let mem, r = make () in
  (* Three capabilities in memory: inside, straddling, and disjoint. *)
  Tagmem.Mem.store_cap mem ~addr:0x100 (cap 0x1000 64);      (* inside *)
  Tagmem.Mem.store_cap mem ~addr:0x200 (cap 0x0ff0 64);      (* straddles *)
  Tagmem.Mem.store_cap mem ~addr:0x300 (cap 0x8000 64);      (* disjoint *)
  Revoker.quarantine r ~base:0x1000 ~size:256;
  let report = Revoker.sweep r in
  checki "two revoked" 2 report.Revoker.caps_revoked;
  checkb "inside detagged" false (Tagmem.Mem.tag_at mem ~addr:0x100);
  checkb "straddler detagged" false (Tagmem.Mem.tag_at mem ~addr:0x200);
  checkb "disjoint survives" true (Tagmem.Mem.tag_at mem ~addr:0x300);
  checki "quarantine emptied" 0 (Revoker.quarantined_bytes r);
  Alcotest.(check (list (pair int int))) "region released"
    [ (0x1000, 0x1100) ] report.Revoker.released

let test_swept_cap_is_dead () =
  let mem, r = make () in
  Tagmem.Mem.store_cap mem ~addr:0x100 (cap 0x1000 64);
  Revoker.quarantine r ~base:0x1000 ~size:64;
  ignore (Revoker.sweep r);
  let stale = Tagmem.Mem.load_cap mem ~addr:0x100 in
  checkb "dereference fails" true
    (Cheri.Cap.access_ok stale ~addr:0x1000 ~size:8 Cheri.Cap.Read <> Ok ())

let test_sweep_evicts_capchecker_entries () =
  let mem, r = make () in
  ignore mem;
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  (match Capchecker.Checker.install checker ~task:1 ~obj:0 (cap 0x1000 64) with
  | Capchecker.Table.Installed _ -> ()
  | Capchecker.Table.Table_full | Capchecker.Table.Rejected_untagged -> assert false);
  (match Capchecker.Checker.install checker ~task:1 ~obj:1 (cap 0x8000 64) with
  | Capchecker.Table.Installed _ -> ()
  | Capchecker.Table.Table_full | Capchecker.Table.Rejected_untagged -> assert false);
  Revoker.quarantine r ~base:0x1000 ~size:64;
  let report = Revoker.sweep ~checker r in
  checki "one entry evicted" 1 report.Revoker.entries_evicted;
  checki "one left" 1 (Capchecker.Table.live_count (Capchecker.Checker.table checker));
  (* The accelerator's stale DMA is now denied. *)
  let outcome =
    Capchecker.Checker.check checker
      { Guard.Iface.source = 1; port = Some 0; addr = 0x1000; size = 8;
        kind = Guard.Iface.Read }
  in
  checkb "stale DMA denied" true
    (match outcome with Guard.Iface.Denied _ -> true | Guard.Iface.Granted _ -> false)

let test_sweep_cost_scales_with_tags () =
  let mem, r = make () in
  let empty = Revoker.sweep r in
  for k = 0 to 63 do
    Tagmem.Mem.store_cap mem ~addr:(0x1000 + (k * 16)) (cap 0x8000 64)
  done;
  let busy = Revoker.sweep r in
  checkb "tagged granules cost cycles" true
    (busy.Revoker.cycles > empty.Revoker.cycles);
  checki "same scan footprint" empty.Revoker.granules_scanned
    busy.Revoker.granules_scanned

let test_idempotent () =
  let mem, r = make () in
  Tagmem.Mem.store_cap mem ~addr:0x100 (cap 0x1000 64);
  Revoker.quarantine r ~base:0x1000 ~size:64;
  ignore (Revoker.sweep r);
  let again = Revoker.sweep r in
  checki "nothing left to revoke" 0 again.Revoker.caps_revoked

let suite =
  [
    ("quarantine accounting", `Quick, test_quarantine_accounting);
    ("sweep revokes overlapping", `Quick, test_sweep_revokes_overlapping_caps);
    ("swept capability is dead", `Quick, test_swept_cap_is_dead);
    ("sweep evicts checker entries", `Quick, test_sweep_evicts_capchecker_entries);
    ("cost scales with tags", `Quick, test_sweep_cost_scales_with_tags);
    ("idempotent", `Quick, test_idempotent);
  ]
