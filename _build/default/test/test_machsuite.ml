(* The benchmark suite itself: Table 2's buffer inventory byte-for-byte,
   kernel validity, golden determinism, and algorithm-level cross checks
   (two gemm variants agree; both sorts actually sort; FFT energy is
   preserved; BFS levels are consistent). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* The paper's Table 2: benchmark -> (buffer count with 8 instances,
   min bytes, max bytes). *)
let paper_table2 =
  [
    ("aes", (8, 128, 128));
    ("backprop", (56, 12, 10432));
    ("bfs_bulk", (40, 40, 16384));
    ("bfs_queue", (40, 40, 16384));
    ("fft_strided", (48, 4096, 4096));
    ("fft_transpose", (16, 2048, 2048));
    ("gemm_blocked", (24, 16384, 16384));
    ("gemm_ncubed", (24, 16384, 16384));
    ("kmp", (32, 4, 64824));
    ("md_grid", (56, 256, 2560));
    ("md_knn", (56, 1024, 16384));
    ("nw", (48, 512, 66564));
    ("sort_merge", (16, 8192, 8192));
    ("sort_radix", (32, 16, 8192));
    ("spmv_crs", (40, 1976, 6664));
    ("spmv_ellpack", (32, 1976, 19760));
    ("stencil2d", (24, 36, 32768));
    ("stencil3d", (24, 8, 65536));
    ("viterbi", (40, 256, 16384));
  ]

let test_registry_complete () =
  checki "19 benchmarks" 19 (List.length Machsuite.Registry.all);
  List.iter
    (fun (name, _) ->
      checkb name true (List.mem name Machsuite.Registry.names))
    paper_table2

let test_table2_exact () =
  List.iter
    (fun (name, (count, min_b, max_b)) ->
      let b = Machsuite.Registry.find name in
      let sizes = List.map Kernel.Ir.buf_decl_bytes b.kernel.Kernel.Ir.bufs in
      checki (name ^ " count") count (8 * List.length sizes);
      checki (name ^ " min") min_b (List.fold_left min max_int sizes);
      checki (name ^ " max") max_b (List.fold_left max 0 sizes))
    paper_table2

let test_all_kernels_validate () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      match Kernel.Ir.validate b.kernel with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Machsuite.Registry.all

let test_output_buffers_writable () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      List.iter
        (fun name ->
          let decl = Kernel.Ir.find_buf b.kernel name in
          checkb (b.name ^ "." ^ name) true decl.Kernel.Ir.writable)
        b.output_bufs)
    Machsuite.Registry.all

let test_goldens_deterministic () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let g1 = Machsuite.Bench_def.golden b in
      let g2 = Machsuite.Bench_def.golden b in
      List.iter2
        (fun (n1, a1) (n2, a2) ->
          Alcotest.(check string) "order" n1 n2;
          checkb (b.name ^ "." ^ n1) true
            (Array.for_all2 Kernel.Value.equal a1 a2))
        g1 g2)
    Machsuite.Registry.all

let test_golden_changes_outputs () =
  (* Every benchmark must actually compute something: at least one output
     buffer differs from its initial contents. *)
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let golden = Machsuite.Bench_def.golden b in
      let changed =
        List.exists
          (fun name ->
            let decl = Kernel.Ir.find_buf b.kernel name in
            let initial = Machsuite.Bench_def.initial_array b decl in
            not (Array.for_all2 Kernel.Value.equal initial (List.assoc name golden)))
          b.output_bufs
      in
      checkb (b.name ^ " computes") true changed)
    Machsuite.Registry.all

let test_gemm_variants_agree () =
  let g1 = Machsuite.Bench_def.golden (Machsuite.Registry.find "gemm_ncubed") in
  let g2 = Machsuite.Bench_def.golden (Machsuite.Registry.find "gemm_blocked") in
  checkb "same product" true
    (Array.for_all2 Kernel.Value.equal (List.assoc "prod" g1) (List.assoc "prod" g2))

let test_sorts_sort () =
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      let sorted = List.assoc "a" (Machsuite.Bench_def.golden b) in
      let initial =
        Machsuite.Bench_def.initial_array b (Kernel.Ir.find_buf b.kernel "a")
      in
      let expected =
        let copy = Array.map Kernel.Value.as_int initial in
        Array.sort compare copy;
        copy
      in
      checkb (name ^ " sorted correctly") true
        (Array.for_all2 (fun s e -> Kernel.Value.as_int s = e) sorted expected))
    [ "sort_merge"; "sort_radix" ]

let test_kmp_matches_reference () =
  let b = Machsuite.Registry.find "kmp" in
  let golden = Machsuite.Bench_def.golden b in
  let pattern =
    Array.map Kernel.Value.as_int
      (Machsuite.Bench_def.initial_array b (Kernel.Ir.find_buf b.kernel "pattern"))
  in
  let text =
    Array.map Kernel.Value.as_int
      (Machsuite.Bench_def.initial_array b (Kernel.Ir.find_buf b.kernel "input"))
  in
  (* Overlapping occurrences, like the kernel counts. *)
  let naive_count = ref 0 in
  for pos = 0 to Array.length text - Array.length pattern do
    let ok = ref true in
    Array.iteri (fun j pj -> if text.(pos + j) <> pj then ok := false) pattern;
    if !ok then incr naive_count
  done;
  let counted = Kernel.Value.as_int (List.assoc "n_matches" golden).(0) in
  checki "match count" !naive_count counted;
  checkb "pattern occurs at all" true (!naive_count > 0)

let test_bfs_levels_consistent () =
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      let golden = Machsuite.Bench_def.golden b in
      let level = Array.map Kernel.Value.as_int (List.assoc "level" golden) in
      checki "root at level 0" 0 level.(0);
      (* Every reached level > 0 has a reached predecessor level. *)
      let reached l = Array.exists (fun x -> x = l) level in
      Array.iter
        (fun l -> if l <> 255 && l > 0 then checkb "predecessor" true (reached (l - 1)))
        level)
    [ "bfs_bulk"; "bfs_queue" ]

let test_bfs_variants_agree_on_levels () =
  let g1 = Machsuite.Bench_def.golden (Machsuite.Registry.find "bfs_bulk") in
  let g2 = Machsuite.Bench_def.golden (Machsuite.Registry.find "bfs_queue") in
  (* Both explore the same graph: the set of reached nodes must agree (level
     assignment order differs between the queue and horizon algorithms only
     for equal-distance ties, which BFS resolves identically here). *)
  checkb "levels agree" true
    (Array.for_all2 Kernel.Value.equal (List.assoc "level" g1) (List.assoc "level" g2))

let test_spmv_crs_row_sums () =
  let b = Machsuite.Registry.find "spmv_crs" in
  let golden = Machsuite.Bench_def.golden b in
  let out = List.assoc "out" golden in
  (* Spot-check row 0 against a direct dot product. *)
  let arr name =
    Machsuite.Bench_def.initial_array b (Kernel.Ir.find_buf b.kernel name)
  in
  let vals = arr "val" and cols = arr "cols" and rowstr = arr "rowstr" and vec = arr "vec" in
  let lo = Kernel.Value.as_int rowstr.(0) and hi = Kernel.Value.as_int rowstr.(1) in
  let expected = ref 0.0 in
  for j = lo to hi - 1 do
    expected :=
      !expected
      +. Kernel.Value.as_float vals.(j)
         *. Kernel.Value.as_float vec.(Kernel.Value.as_int cols.(j))
  done;
  Alcotest.(check (float 1e-9)) "row 0" !expected (Kernel.Value.as_float out.(0))

let test_viterbi_path_valid () =
  let b = Machsuite.Registry.find "viterbi" in
  let golden = Machsuite.Bench_def.golden b in
  let path = Array.map Kernel.Value.as_int (List.assoc "path" golden) in
  Array.iter (fun s -> checkb "state in range" true (s >= 0 && s < 64)) path

let test_nw_alignment_preserves_sequences () =
  let b = Machsuite.Registry.find "nw" in
  let golden = Machsuite.Bench_def.golden b in
  let aligned_a = Array.map Kernel.Value.as_int (List.assoc "alignedA" golden) in
  let seq_a =
    Array.map Kernel.Value.as_int
      (Machsuite.Bench_def.initial_array b (Kernel.Ir.find_buf b.kernel "seqA"))
  in
  (* Dropping gaps (-1) from the alignment yields a reversed suffix of seqA
     (the traceback may stop at the matrix border). *)
  let no_gaps =
    Array.to_list aligned_a |> List.filter (fun x -> x >= 0) |> List.rev
  in
  let suffix_start = Array.length seq_a - List.length no_gaps in
  checkb "alignment nonempty" true (no_gaps <> []);
  List.iteri
    (fun j x -> checki "symbol" seq_a.(suffix_start + j) x)
    no_gaps

let test_directives_sane () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      checkb (b.name ^ " ipc") true (b.directives.Hls.Directives.compute_ipc > 0.0);
      checkb (b.name ^ " outstanding") true
        (b.directives.Hls.Directives.max_outstanding >= 1);
      checkb (b.name ^ " area") true (b.directives.Hls.Directives.area_luts > 0))
    Machsuite.Registry.all

let test_object_count_fits_coarse_id_space () =
  (* Coarse mode has 8 id bits; every benchmark must fit. *)
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      checkb b.name true
        (List.length b.kernel.Kernel.Ir.bufs < 1 lsl Capchecker.Checker.obj_id_bits))
    Machsuite.Registry.all

let test_capchecker_capacity_sufficient () =
  (* 8 instances of the richest benchmark must fit the 256-entry table. *)
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      checkb b.name true (8 * List.length b.kernel.Kernel.Ir.bufs <= 256))
    Machsuite.Registry.all

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("Table 2 exact", `Quick, test_table2_exact);
    ("kernels validate", `Quick, test_all_kernels_validate);
    ("output buffers writable", `Quick, test_output_buffers_writable);
    ("goldens deterministic", `Slow, test_goldens_deterministic);
    ("goldens compute", `Slow, test_golden_changes_outputs);
    ("gemm variants agree", `Slow, test_gemm_variants_agree);
    ("sorts sort", `Quick, test_sorts_sort);
    ("kmp reference", `Quick, test_kmp_matches_reference);
    ("bfs level consistency", `Quick, test_bfs_levels_consistent);
    ("bfs variants agree", `Quick, test_bfs_variants_agree_on_levels);
    ("spmv row sums", `Quick, test_spmv_crs_row_sums);
    ("viterbi path valid", `Quick, test_viterbi_path_valid);
    ("nw alignment", `Quick, test_nw_alignment_preserves_sequences);
    ("directives sane", `Quick, test_directives_sane);
    ("coarse id space fits", `Quick, test_object_count_fits_coarse_id_space);
    ("capchecker capacity", `Quick, test_capchecker_capacity_sufficient);
  ]
