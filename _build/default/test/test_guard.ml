(* The protection baselines: IOPMP region rules, IOMMU page tables + IOTLB,
   sNPU bounds registers, and the pass-through. *)

open Guard

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let read_req ?port ~source ~addr ~size () =
  { Iface.source; port; addr; size; kind = Iface.Read }

let write_req ~source ~addr ~size () =
  { Iface.source; port = None; addr; size; kind = Iface.Write }

let granted = function Iface.Granted _ -> true | Iface.Denied _ -> false

let phys_of = function
  | Iface.Granted { phys; _ } -> phys
  | Iface.Denied d -> Alcotest.failf "denied: %s" d.Iface.detail

(* ---------------- pass-through ---------------- *)

let test_pass_through () =
  let g = Iface.pass_through in
  let r = read_req ~source:3 ~addr:0xDEAD ~size:8 () in
  checkb "grants anything" true (granted (g.Iface.check r));
  checki "address unchanged" 0xDEAD (phys_of (g.Iface.check r));
  checki "no entries" 0 (g.Iface.entries_in_use ())

(* ---------------- IOPMP ---------------- *)

let test_iopmp_rules () =
  let pmp = Iopmp.create ~regions:4 () in
  (match
     Iopmp.add_rule pmp
       { Iopmp.source = 1; base = 0x1000; top = 0x2000; can_read = true;
         can_write = false }
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let g = Iopmp.as_guard pmp in
  checkb "read inside" true (granted (g.Iface.check (read_req ~source:1 ~addr:0x1800 ~size:8 ())));
  checkb "write denied by perm" false
    (granted (g.Iface.check (write_req ~source:1 ~addr:0x1800 ~size:8 ())));
  checkb "other source denied" false
    (granted (g.Iface.check (read_req ~source:2 ~addr:0x1800 ~size:8 ())));
  checkb "straddling top denied" false
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x1ffc ~size:8 ())));
  checki "one entry" 1 (g.Iface.entries_in_use ())

let test_iopmp_capacity () =
  let pmp = Iopmp.create ~regions:2 () in
  let rule base =
    { Iopmp.source = 0; base; top = base + 16; can_read = true; can_write = true }
  in
  checkb "1st ok" true (Iopmp.add_rule pmp (rule 0) = Ok ());
  checkb "2nd ok" true (Iopmp.add_rule pmp (rule 32) = Ok ());
  checkb "3rd rejected" true (Result.is_error (Iopmp.add_rule pmp (rule 64)))

let test_iopmp_remove () =
  let pmp = Iopmp.create () in
  List.iter
    (fun source ->
      match
        Iopmp.add_rule pmp
          { Iopmp.source; base = 0; top = 64; can_read = true; can_write = true }
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 1 ];
  Iopmp.remove_rules_for pmp ~source:1;
  checki "only source 2 remains" 1 ((Iopmp.as_guard pmp).Iface.entries_in_use ())

(* ---------------- IOMMU ---------------- *)

let test_iommu_mapping () =
  let mmu = Iommu.create () in
  Iommu.map_range mmu ~source:1 ~base:0x2000 ~size:100 ~read:true ~write:false;
  let g = Iommu.as_guard mmu in
  checkb "read in page" true
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x2000 ~size:8 ())));
  (* The whole page is reachable even past the 100-byte buffer: the intra-page
     blind spot. *)
  checkb "page slop granted" true
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x2ff8 ~size:8 ())));
  checkb "next page denied" false
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x3000 ~size:8 ())));
  checkb "write denied" false
    (granted (g.Iface.check (write_req ~source:1 ~addr:0x2000 ~size:8 ())));
  checkb "other source denied" false
    (granted (g.Iface.check (read_req ~source:2 ~addr:0x2000 ~size:8 ())))

let test_iommu_multi_page_access () =
  let mmu = Iommu.create () in
  Iommu.map_range mmu ~source:1 ~base:0x0 ~size:8192 ~read:true ~write:true;
  let g = Iommu.as_guard mmu in
  checkb "straddling two mapped pages ok" true
    (granted (g.Iface.check (read_req ~source:1 ~addr:4090 ~size:12 ())));
  Iommu.unmap_source mmu ~source:1;
  checkb "unmapped" false
    (granted (g.Iface.check (read_req ~source:1 ~addr:0 ~size:8 ())));
  checki "no entries" 0 (Iommu.mapped_pages mmu)

let test_iommu_perm_union () =
  let mmu = Iommu.create () in
  Iommu.map_range mmu ~source:1 ~base:0 ~size:64 ~read:true ~write:false;
  Iommu.map_range mmu ~source:1 ~base:128 ~size:64 ~read:false ~write:true;
  let g = Iommu.as_guard mmu in
  (* Both buffers share page 0, so the page carries the union — precisely the
     granularity loss the paper criticises. *)
  checkb "write through read-only neighbour" true
    (granted (g.Iface.check (write_req ~source:1 ~addr:0 ~size:8 ())))

let test_iommu_entries_math () =
  checki "empty" 0 (Iommu.entries_for_range ~base:0 ~size:0);
  checki "one byte one page" 1 (Iommu.entries_for_range ~base:0 ~size:1);
  checki "exactly a page" 1 (Iommu.entries_for_range ~base:0 ~size:4096);
  checki "page + 1" 2 (Iommu.entries_for_range ~base:0 ~size:4097);
  checki "unaligned straddle" 2 (Iommu.entries_for_range ~base:4090 ~size:12)

let test_iommu_tlb_latency () =
  let mmu = Iommu.create ~tlb_entries:4 () in
  Iommu.map_range mmu ~source:1 ~base:0 ~size:4096 ~read:true ~write:true;
  let g = Iommu.as_guard mmu in
  let lat req =
    match g.Iface.check req with
    | Iface.Granted { latency; _ } -> latency
    | Iface.Denied _ -> Alcotest.fail "denied"
  in
  let miss = lat (read_req ~source:1 ~addr:0 ~size:8 ()) in
  let hit = lat (read_req ~source:1 ~addr:8 ~size:8 ()) in
  checkb "miss slower than hit" true (miss > hit)

let prop_iommu_entries_model =
  QCheck.Test.make ~count:300 ~name:"entries_for_range matches page count"
    QCheck.(pair (int_bound 100_000) (int_range 1 100_000))
    (fun (base, size) ->
      let first = base / 4096 and last = (base + size - 1) / 4096 in
      Iommu.entries_for_range ~base ~size = last - first + 1)

(* ---------------- sNPU ---------------- *)

let test_snpu_regions () =
  let s = Snpu.create () in
  (match Snpu.grant s ~source:1 ~base:0x100 ~size:64 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Snpu.grant s ~source:1 ~base:0x400 ~size:64 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let g = Snpu.as_guard s in
  checkb "region one" true
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x120 ~size:8 ())));
  (* Task granularity: any region of the task admits, reads and writes
     indistinguishably. *)
  checkb "writes allowed too" true
    (granted (g.Iface.check (write_req ~source:1 ~addr:0x420 ~size:8 ())));
  checkb "between regions denied" false
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x200 ~size:8 ())));
  checkb "other task denied" false
    (granted (g.Iface.check (read_req ~source:2 ~addr:0x120 ~size:8 ())));
  Snpu.revoke_task s ~source:1;
  checkb "revoked" false
    (granted (g.Iface.check (read_req ~source:1 ~addr:0x120 ~size:8 ())))

let test_snpu_capacity () =
  let s = Snpu.create ~regions_per_task:2 () in
  checkb "1st" true (Snpu.grant s ~source:0 ~base:0 ~size:8 = Ok ());
  checkb "2nd" true (Snpu.grant s ~source:0 ~base:16 ~size:8 = Ok ());
  checkb "3rd rejected" true (Result.is_error (Snpu.grant s ~source:0 ~base:32 ~size:8));
  checkb "other task unaffected" true (Snpu.grant s ~source:1 ~base:0 ~size:8 = Ok ())

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_iommu_entries_model ]

let suite =
  [
    ("pass-through", `Quick, test_pass_through);
    ("iopmp rules", `Quick, test_iopmp_rules);
    ("iopmp capacity", `Quick, test_iopmp_capacity);
    ("iopmp remove", `Quick, test_iopmp_remove);
    ("iommu mapping", `Quick, test_iommu_mapping);
    ("iommu multi-page", `Quick, test_iommu_multi_page_access);
    ("iommu permission union", `Quick, test_iommu_perm_union);
    ("iommu entries math", `Quick, test_iommu_entries_math);
    ("iommu tlb latency", `Quick, test_iommu_tlb_latency);
    ("snpu regions", `Quick, test_snpu_regions);
    ("snpu capacity", `Quick, test_snpu_capacity);
  ]
  @ qsuite
