(* Buffer layout and typed element access over tagged memory. *)

open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mem () = Tagmem.Mem.create ~size:65536

let layout () =
  Memops.Layout.make
    [
      { Memops.Layout.decl = buf "a" I64 8; base = 1024 };
      { Memops.Layout.decl = buf "b" F32 16; base = 2048 };
      { Memops.Layout.decl = buf "c" U8 32; base = 4096 };
      { Memops.Layout.decl = buf "d" I32 8; base = 8192 };
    ]

let test_find_and_bindings () =
  let l = layout () in
  checki "found base" 2048 (Memops.Layout.find l "b").Memops.Layout.base;
  checkb "missing raises" true
    (try
       ignore (Memops.Layout.find l "nope");
       false
     with Not_found -> true);
  let bs = Memops.Layout.bindings l in
  checki "all bindings" 4 (List.length bs);
  checkb "sorted by base" true
    (List.for_all2
       (fun (x : Memops.Layout.binding) (y : Memops.Layout.binding) ->
         x.Memops.Layout.base <= y.Memops.Layout.base)
       (List.filteri (fun idx _ -> idx < 3) bs)
       (List.tl bs))

let test_duplicate_rejected () =
  checkb "duplicate names rejected" true
    (try
       ignore
         (Memops.Layout.make
            [ { Memops.Layout.decl = buf "a" I64 8; base = 0 };
              { Memops.Layout.decl = buf "a" I64 8; base = 64 } ]);
       false
     with Invalid_argument _ -> true)

let test_elem_addr () =
  let l = layout () in
  let a = Memops.Layout.find l "a" in
  checki "i64 stride" (1024 + 24) (Memops.Layout.elem_addr a 3);
  let c = Memops.Layout.find l "c" in
  checki "byte stride" (4096 + 5) (Memops.Layout.elem_addr c 5);
  (* No clamping: out-of-range and negative indices produce raw addresses. *)
  checki "oob address" (1024 + 800) (Memops.Layout.elem_addr a 100);
  checki "negative address" (1024 - 8) (Memops.Layout.elem_addr a (-1))

let test_typed_roundtrips () =
  let m = mem () in
  Memops.Layout.write_elem m I64 ~addr:0 (Kernel.Value.VI (-123456789));
  checki "i64" (-123456789) (Kernel.Value.as_int (Memops.Layout.read_elem m I64 ~addr:0));
  Memops.Layout.write_elem m I32 ~addr:8 (Kernel.Value.VI (-7));
  checki "i32 sign extension" (-7)
    (Kernel.Value.as_int (Memops.Layout.read_elem m I32 ~addr:8));
  Memops.Layout.write_elem m U8 ~addr:12 (Kernel.Value.VI 0x1FF);
  checki "u8 truncation" 0xFF (Kernel.Value.as_int (Memops.Layout.read_elem m U8 ~addr:12));
  Memops.Layout.write_elem m F64 ~addr:16 (Kernel.Value.VF 2.5);
  Alcotest.(check (float 0.0)) "f64" 2.5
    (Kernel.Value.as_float (Memops.Layout.read_elem m F64 ~addr:16))

let test_f32_narrowing () =
  let m = mem () in
  let v = 0.1 in
  Memops.Layout.write_elem m F32 ~addr:0 (Kernel.Value.VF v);
  let back = Kernel.Value.as_float (Memops.Layout.read_elem m F32 ~addr:0) in
  checkb "narrowed" true (back <> v);
  Alcotest.(check (float 1e-7)) "close" v back;
  (* Re-storing the narrowed value is lossless. *)
  Memops.Layout.write_elem m F32 ~addr:8 (Kernel.Value.VF back);
  Alcotest.(check (float 0.0)) "fixpoint" back
    (Kernel.Value.as_float (Memops.Layout.read_elem m F32 ~addr:8))

let test_init_and_read_buffer () =
  let m = mem () in
  let b = { Memops.Layout.decl = buf "x" I32 10; base = 256 } in
  Memops.Layout.init_buffer m b (fun idx -> Kernel.Value.VI (idx * idx));
  let back = Memops.Layout.read_buffer m b in
  checki "len" 10 (Array.length back);
  Array.iteri (fun idx v -> checki "elem" (idx * idx) (Kernel.Value.as_int v)) back

let test_preserving_write_keeps_tags () =
  let m = mem () in
  let cap =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:0 ~length:64 with
    | Ok c -> c
    | Error _ -> assert false
  in
  Tagmem.Mem.store_cap m ~addr:512 cap;
  Memops.Layout.write_elem_preserving_tags m I64 ~addr:512 (Kernel.Value.VI 1);
  checkb "tag kept" true (Tagmem.Mem.tag_at m ~addr:512);
  Memops.Layout.write_elem m I64 ~addr:512 (Kernel.Value.VI 1);
  checkb "normal write clears" false (Tagmem.Mem.tag_at m ~addr:512)

let suite =
  [
    ("find and bindings", `Quick, test_find_and_bindings);
    ("duplicates rejected", `Quick, test_duplicate_rejected);
    ("element addressing", `Quick, test_elem_addr);
    ("typed roundtrips", `Quick, test_typed_roundtrips);
    ("f32 narrowing", `Quick, test_f32_narrowing);
    ("init/read buffer", `Quick, test_init_and_read_buffer);
    ("tag-preserving write", `Quick, test_preserving_write_keeps_tags);
  ]
