(* The threat model, executed: every attack against every scheme, with the
   expectations of Table 3 asserted, plus the capability-forging scenarios of
   the motivating example (Figure 2). *)

open Security

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let capchecker_modes =
  [ Soc.Config.Prot_cc_fine; Soc.Config.Prot_cc_coarse; Soc.Config.Prot_cc_cached ]

let all_guarded =
  [ Soc.Config.Prot_iopmp; Soc.Config.Prot_iommu; Soc.Config.Prot_snpu ]
  @ capchecker_modes

let name_of = function
  | Soc.Config.Prot_none -> "none"
  | Soc.Config.Prot_naive -> "naive"
  | Soc.Config.Prot_iopmp -> "iopmp"
  | Soc.Config.Prot_iommu -> "iommu"
  | Soc.Config.Prot_snpu -> "snpu"
  | Soc.Config.Prot_cc_fine -> "fine"
  | Soc.Config.Prot_cc_coarse -> "coarse"
  | Soc.Config.Prot_cc_cached -> "cached"

let expect_protected attack name schemes =
  List.iter
    (fun p ->
      let o = attack p in
      checkb
        (Printf.sprintf "%s blocked by %s (got %s)" name (name_of p)
           (Attacks.outcome_to_string o))
        true (Attacks.is_protected o))
    schemes

let expect_unprotected attack name schemes =
  List.iter
    (fun p ->
      let o = attack p in
      checkb
        (Printf.sprintf "%s succeeds against %s (got %s)" name (name_of p)
           (Attacks.outcome_to_string o))
        false (Attacks.is_protected o))
    schemes

(* --------- cross-task attacks: the headline protection --------- *)

let test_cross_task_overread () =
  expect_protected Attacks.overread_cross_task "overread" all_guarded;
  (* Without protection the secret actually leaks. *)
  checks "leak demonstrated" "LEAKED"
    (Attacks.outcome_to_string (Attacks.overread_cross_task Soc.Config.Prot_naive))

let test_cross_task_overwrite () =
  expect_protected Attacks.overwrite_cross_task "overwrite" all_guarded;
  checks "corruption demonstrated" "CORRUPTED"
    (Attacks.outcome_to_string (Attacks.overwrite_cross_task Soc.Config.Prot_naive))

let test_untrusted_pointer () =
  expect_protected Attacks.untrusted_pointer_deref "untrusted deref" all_guarded;
  expect_unprotected Attacks.untrusted_pointer_deref "untrusted deref"
    [ Soc.Config.Prot_naive ]

(* --------- granularity distinctions --------- *)

let test_same_task_object_granularity () =
  (* Only Fine separates objects of one task. *)
  let fine = Attacks.overread_same_task_object Soc.Config.Prot_cc_fine in
  checkb "fine blocks intra-task" true (Attacks.is_protected fine);
  List.iter
    (fun p ->
      let o = Attacks.overread_same_task_object p in
      checkb
        (Printf.sprintf "%s grants intra-task (%s)" (name_of p)
           (Attacks.outcome_to_string o))
        false (Attacks.is_protected o))
    [ Soc.Config.Prot_iopmp; Soc.Config.Prot_iommu; Soc.Config.Prot_snpu ]

let test_iommu_page_slop () =
  let o = Attacks.overread_page_slop Soc.Config.Prot_iommu in
  checks "iommu blind inside the page" "granted page slop"
    (Attacks.outcome_to_string o);
  let fine = Attacks.overread_page_slop Soc.Config.Prot_cc_fine in
  checkb "capchecker sees through the page" true (Attacks.is_protected fine)

let test_coarse_id_forge () =
  let own, cross = Attacks.coarse_object_id_forge () in
  checkb "coarse degrades to task granularity" false (Attacks.is_protected own);
  checkb "source id is not forgeable" true (Attacks.is_protected cross)

let test_matrix_labels () =
  checks "none" "X" (Matrix.granularity_label Soc.Config.Prot_naive);
  checks "iopmp" "TA" (Matrix.granularity_label Soc.Config.Prot_iopmp);
  checks "iommu" "PG" (Matrix.granularity_label Soc.Config.Prot_iommu);
  checks "snpu" "TA" (Matrix.granularity_label Soc.Config.Prot_snpu);
  checks "coarse" "TA" (Matrix.granularity_label Soc.Config.Prot_cc_coarse);
  checks "fine" "OB" (Matrix.granularity_label Soc.Config.Prot_cc_fine);
  checks "cached keeps object granularity" "OB"
    (Matrix.granularity_label Soc.Config.Prot_cc_cached)

(* --------- group (b): pointer lifecycle --------- *)

let test_use_after_free () =
  expect_protected Attacks.use_after_free "UAF" all_guarded;
  expect_unprotected Attacks.use_after_free "UAF" [ Soc.Config.Prot_naive ]

let test_fixed_address () =
  expect_protected Attacks.fixed_address_os "fixed address" all_guarded;
  checks "OS memory reachable without protection" "LEAKED"
    (Attacks.outcome_to_string (Attacks.fixed_address_os Soc.Config.Prot_naive))

let test_uninitialized_pointer () =
  expect_protected Attacks.uninitialized_pointer "uninit pointer" all_guarded;
  expect_unprotected Attacks.uninitialized_pointer "uninit pointer"
    [ Soc.Config.Prot_naive ]

(* --------- capability forging (Figure 2) --------- *)

let test_forging_naive_integration () =
  checks "naive integration forges" "FORGED"
    (Attacks.outcome_to_string (Attacks.forge_capability Soc.Config.Prot_naive))

let test_forging_blocked_or_neutralized_everywhere_else () =
  List.iter
    (fun p ->
      let o = Attacks.forge_capability p in
      checkb
        (Printf.sprintf "no forgery under %s (%s)" (name_of p)
           (Attacks.outcome_to_string o))
        true (Attacks.is_protected o))
    (Soc.Config.Prot_none :: all_guarded)

let test_forged_capability_would_be_dangerous () =
  (* Establish that the forged capability from the naive system is not just
     different bits but a live, dereferenceable grant — i.e. the attack
     matters. *)
  let env = Scenario.setup ~attacker_body:[] Soc.Config.Prot_naive in
  let mem = env.Scenario.sys.Soc.System.mem in
  let addr = 2 * Tagmem.Mem.granule * 1024 in
  let cap =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:addr ~length:64 with
    | Ok c -> c
    | Error _ -> assert false
  in
  Tagmem.Mem.store_cap mem ~addr cap;
  (* Simulate the DMA overwrite widening the bounds field. *)
  let widened =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:0 ~length:Cheri.Cap.max_address with
    | Ok c -> c
    | Error _ -> assert false
  in
  let words = Cheri.Compress.encode widened in
  let bytes = Bytes.create 16 in
  Bytes.set_int64_le bytes 0 words.Cheri.Compress.lo;
  Bytes.set_int64_le bytes 8 words.Cheri.Compress.hi;
  Tagmem.Mem.unsafe_write_preserving_tags mem ~addr bytes;
  let forged = Tagmem.Mem.load_cap mem ~addr in
  checkb "forged capability is tagged" true forged.Cheri.Cap.tag;
  checkb "and grants the whole address space" true
    (Cheri.Cap.access_ok forged ~addr:0x100 ~size:8 Cheri.Cap.Read = Ok ())

(* --------- the matrix as a whole --------- *)

let test_matrix_renders_all_rows () =
  let rows = Matrix.rows () in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  List.iter
    (fun (r : Matrix.row) ->
      Alcotest.(check int)
        ("cells for " ^ r.Matrix.title)
        (List.length Matrix.schemes)
        (List.length r.Matrix.cells))
    rows

let test_victim_secret_helper () =
  let env = Scenario.setup Soc.Config.Prot_cc_fine in
  checkb "secret intact initially" true (Scenario.victim_secret_intact env);
  let sb = Memops.Layout.find env.Scenario.victim.Driver.layout "secret" in
  Tagmem.Mem.write_u64 env.Scenario.sys.Soc.System.mem
    ~addr:sb.Memops.Layout.base 0L;
  checkb "tamper detected" false (Scenario.victim_secret_intact env)

let suite =
  [
    ("cross-task overread", `Slow, test_cross_task_overread);
    ("cross-task overwrite", `Slow, test_cross_task_overwrite);
    ("untrusted pointer", `Slow, test_untrusted_pointer);
    ("intra-task granularity", `Slow, test_same_task_object_granularity);
    ("iommu page slop", `Quick, test_iommu_page_slop);
    ("coarse id forge", `Quick, test_coarse_id_forge);
    ("matrix labels", `Slow, test_matrix_labels);
    ("use after free", `Slow, test_use_after_free);
    ("fixed address", `Slow, test_fixed_address);
    ("uninitialized pointer", `Slow, test_uninitialized_pointer);
    ("forging: naive integration", `Quick, test_forging_naive_integration);
    ("forging: everyone else", `Slow, test_forging_blocked_or_neutralized_everywhere_else);
    ("forged capability is live", `Quick, test_forged_capability_would_be_dangerous);
    ("matrix shape", `Slow, test_matrix_renders_all_rows);
    ("victim helper", `Quick, test_victim_secret_helper);
  ]
