(* Tagged memory and the driver heap: tag-clearing semantics (the
   unforgeability mechanism), scalar accessors, and allocator invariants. *)

open Tagmem

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let some_cap base len =
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
  | Ok c -> c
  | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)

let test_rw_scalars () =
  let m = Mem.create ~size:4096 in
  Mem.write_u8 m ~addr:0 200;
  checki "u8" 200 (Mem.read_u8 m ~addr:0);
  Mem.write_u32 m ~addr:4 0xDEADBEEF;
  checki "u32" 0xDEADBEEF (Mem.read_u32 m ~addr:4);
  Mem.write_u64 m ~addr:8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Mem.read_u64 m ~addr:8);
  Mem.write_f32 m ~addr:16 1.5;
  Alcotest.(check (float 0.0)) "f32" 1.5 (Mem.read_f32 m ~addr:16);
  Mem.write_f64 m ~addr:24 (-3.25);
  Alcotest.(check (float 0.0)) "f64" (-3.25) (Mem.read_f64 m ~addr:24)

let test_little_endian_bytes () =
  let m = Mem.create ~size:64 in
  Mem.write_u32 m ~addr:0 0x04030201;
  let b = Mem.read_bytes m ~addr:0 ~size:4 in
  checki "lsb first" 1 (Char.code (Bytes.get b 0));
  checki "msb last" 4 (Char.code (Bytes.get b 3))

let test_out_of_range () =
  let m = Mem.create ~size:64 in
  (try
     ignore (Mem.read_u64 m ~addr:60);
     Alcotest.fail "straddling end allowed"
   with Mem.Out_of_range { addr; size } ->
     checki "addr" 60 addr;
     checki "size" 8 size);
  try
    Mem.write_u8 m ~addr:(-1) 0;
    Alcotest.fail "negative address allowed"
  with Mem.Out_of_range _ -> ()

let test_cap_store_load () =
  let m = Mem.create ~size:4096 in
  let cap = some_cap 0x100 64 in
  Mem.store_cap m ~addr:32 cap;
  checkb "tag set" true (Mem.tag_at m ~addr:32);
  checkb "tag granule covers" true (Mem.tag_at m ~addr:47);
  checkb "neighbour granule clear" false (Mem.tag_at m ~addr:48);
  let loaded = Mem.load_cap m ~addr:32 in
  checkb "roundtrip" true (Cheri.Cap.equal loaded cap);
  checki "one tag" 1 (Mem.count_tags m)

let test_cap_misaligned_rejected () =
  let m = Mem.create ~size:4096 in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Mem: capability access must be 16-byte aligned") (fun () ->
      Mem.store_cap m ~addr:8 (some_cap 0 16))

let test_raw_write_clears_tag () =
  let m = Mem.create ~size:4096 in
  Mem.store_cap m ~addr:32 (some_cap 0x100 64);
  (* A one-byte write anywhere in the granule must kill the tag. *)
  Mem.write_u8 m ~addr:45 0xFF;
  checkb "tag cleared" false (Mem.tag_at m ~addr:32);
  let loaded = Mem.load_cap m ~addr:32 in
  checkb "loaded untagged" false loaded.Cheri.Cap.tag

let test_fill_clears_tags () =
  let m = Mem.create ~size:4096 in
  Mem.store_cap m ~addr:0 (some_cap 0 16);
  Mem.store_cap m ~addr:64 (some_cap 0 16);
  Mem.fill m ~addr:0 ~size:80 '\000';
  checki "all tags gone" 0 (Mem.count_tags m)

let test_unsafe_write_preserves_tag () =
  (* The naive-integration hazard: data changes, tag survives. *)
  let m = Mem.create ~size:4096 in
  let cap = some_cap 0x100 64 in
  Mem.store_cap m ~addr:32 cap;
  Mem.unsafe_write_preserving_tags m ~addr:32 (Bytes.make 8 '\xff');
  checkb "tag survived" true (Mem.tag_at m ~addr:32);
  let forged = Mem.load_cap m ~addr:32 in
  checkb "forged is tagged" true forged.Cheri.Cap.tag;
  checkb "forged differs" false (Cheri.Cap.equal forged cap)

let test_granule_rounding () =
  let m = Mem.create ~size:100 in
  checki "rounded up to granule" 112 (Mem.size m)

(* ---------------- Alloc ---------------- *)

let test_alloc_basic () =
  let a = Alloc.create ~base:0x1000 ~size:4096 in
  let p1 = Alloc.malloc a 100 in
  let p2 = Alloc.malloc a 200 in
  checkb "distinct" true (p1 <> p2);
  checki "sized" 112 (Alloc.size_of a p1);
  checki "live count" 2 (List.length (Alloc.live_blocks a));
  Alloc.free a p1;
  Alloc.free a p2;
  checki "all free" 4096 (Alloc.bytes_free a)

let test_alloc_alignment () =
  let a = Alloc.create ~base:0x1008 ~size:65536 in
  let p = Alloc.malloc a ~align:4096 100 in
  checki "page aligned" 0 (p mod 4096)

let test_alloc_zero_size_distinct () =
  let a = Alloc.create ~base:0 ~size:4096 in
  let p1 = Alloc.malloc a 0 in
  let p2 = Alloc.malloc a 0 in
  checkb "zero-size blocks distinct" true (p1 <> p2)

let test_alloc_oom () =
  let a = Alloc.create ~base:0 ~size:256 in
  try
    ignore (Alloc.malloc a 512);
    Alcotest.fail "expected Out_of_memory"
  with Alloc.Out_of_memory n -> checki "request size" 512 n

let test_double_free_rejected () =
  let a = Alloc.create ~base:0 ~size:4096 in
  let p = Alloc.malloc a 64 in
  Alloc.free a p;
  try
    Alloc.free a p;
    Alcotest.fail "double free allowed"
  with Invalid_argument _ -> ()

let test_free_offset_pointer_rejected () =
  (* CWE 761: free of a pointer not at the start of its buffer. *)
  let a = Alloc.create ~base:0 ~size:4096 in
  let p = Alloc.malloc a 64 in
  try
    Alloc.free a (p + 16);
    Alcotest.fail "offset free allowed"
  with Invalid_argument _ -> ()

let test_coalescing_reuses_space () =
  let a = Alloc.create ~base:0 ~size:1024 in
  let ps = List.init 4 (fun _ -> Alloc.malloc a 256) in
  (try
     ignore (Alloc.malloc a 16);
     Alcotest.fail "heap should be full"
   with Alloc.Out_of_memory _ -> ());
  List.iter (Alloc.free a) ps;
  (* After coalescing a single 1024-byte block must be available again. *)
  let big = Alloc.malloc a 1024 in
  checki "full block back" 0 big

let prop_allocations_disjoint =
  QCheck.Test.make ~count:200 ~name:"live allocations never overlap"
    QCheck.(small_list (int_bound 300))
    (fun sizes ->
      let a = Alloc.create ~base:0 ~size:(1 lsl 20) in
      List.iter (fun s -> ignore (Alloc.malloc a s)) sizes;
      let blocks = Alloc.live_blocks a in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | [ _ ] | [] -> true
      in
      disjoint blocks)

let prop_free_restores_bytes =
  QCheck.Test.make ~count:200 ~name:"free returns every byte"
    QCheck.(small_list (int_range 1 300))
    (fun sizes ->
      let total = 1 lsl 20 in
      let a = Alloc.create ~base:0 ~size:total in
      let ps = List.map (fun s -> Alloc.malloc a s) sizes in
      List.iter (Alloc.free a) ps;
      Alloc.bytes_free a = total)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_allocations_disjoint; prop_free_restores_bytes ]

let suite =
  [
    ("scalar read/write", `Quick, test_rw_scalars);
    ("little endian", `Quick, test_little_endian_bytes);
    ("out of range", `Quick, test_out_of_range);
    ("capability store/load", `Quick, test_cap_store_load);
    ("capability alignment", `Quick, test_cap_misaligned_rejected);
    ("raw write clears tag", `Quick, test_raw_write_clears_tag);
    ("fill clears tags", `Quick, test_fill_clears_tags);
    ("naive write preserves tag", `Quick, test_unsafe_write_preserves_tag);
    ("granule rounding", `Quick, test_granule_rounding);
    ("alloc basics", `Quick, test_alloc_basic);
    ("alloc alignment", `Quick, test_alloc_alignment);
    ("alloc zero size", `Quick, test_alloc_zero_size_distinct);
    ("alloc OOM", `Quick, test_alloc_oom);
    ("double free rejected", `Quick, test_double_free_rejected);
    ("offset free rejected", `Quick, test_free_offset_pointer_rejected);
    ("coalescing", `Quick, test_coalescing_reuses_space);
  ]
  @ qsuite
