(* Differential testing: randomly generated (well-typed, in-bounds,
   terminating) kernels executed by all four engines —

     1. the reference interpreter over plain arrays,
     2. the abstract CPU cost model over tagged memory,
     3. the RV64 instruction-level core,
     4. the purecap CHERI core,

   — must leave bit-identical buffer contents.  This is the strongest check
   in the suite: any semantic drift between the interpreter, the memory
   element codecs, the code generator or the ISA simulator shows up as a
   counterexample kernel. *)

open Kernel.Ir

let buf_len = 16

(* ------------------------------------------------------------------ *)
(* Random kernel generation                                             *)
(* ------------------------------------------------------------------ *)

(* Indices are masked to the buffer length, divisors forced nonzero, shifts
   bounded, and loops bounded by constants — generated kernels always
   terminate and never leave their buffers, so every engine must finish
   cleanly (purecap included). *)

type genv = {
  rng : Ccsim.Rng.t;
  mutable int_locals : string list;
  mutable float_locals : string list;
  mutable fresh : int;
}

let pick g xs = List.nth xs (Ccsim.Rng.int g.rng (List.length xs))

let safe_index g e = band e (i (buf_len - 1)) |> fun masked ->
  ignore g;
  masked

let rec gen_int_exp g depth =
  if depth = 0 || Ccsim.Rng.int g.rng 3 = 0 then
    match g.int_locals with
    | [] -> i (Ccsim.Rng.int_in g.rng (-20) 20)
    | locals when Ccsim.Rng.bool g.rng -> v (pick g locals)
    | _ -> i (Ccsim.Rng.int_in g.rng (-20) 20)
  else
    match Ccsim.Rng.int g.rng 12 with
    | 0 -> gen_int_exp g (depth - 1) +: gen_int_exp g (depth - 1)
    | 1 -> gen_int_exp g (depth - 1) -: gen_int_exp g (depth - 1)
    | 2 -> gen_int_exp g (depth - 1) *: i (Ccsim.Rng.int_in g.rng (-5) 5)
    | 3 ->
        (* nonzero divisor *)
        gen_int_exp g (depth - 1) /: (band (gen_int_exp g (depth - 1)) (i 7) +: i 1)
    | 4 -> gen_int_exp g (depth - 1) %: (band (gen_int_exp g (depth - 1)) (i 7) +: i 1)
    | 5 -> band (gen_int_exp g (depth - 1)) (gen_int_exp g (depth - 1))
    | 6 -> bxor (gen_int_exp g (depth - 1)) (gen_int_exp g (depth - 1))
    | 7 -> shl (gen_int_exp g (depth - 1)) (band (gen_int_exp g (depth - 1)) (i 7))
    | 8 -> gen_int_exp g (depth - 1) <: gen_int_exp g (depth - 1)
    | 9 -> imin (gen_int_exp g (depth - 1)) (gen_int_exp g (depth - 1))
    | 10 -> ld "ints" (safe_index g (gen_int_exp g (depth - 1)))
    | _ -> f2i (fmin (gen_float_exp g (depth - 1)) (f 1000.0))

and gen_float_exp g depth =
  if depth = 0 || Ccsim.Rng.int g.rng 3 = 0 then
    match g.float_locals with
    | [] -> f (Ccsim.Rng.float g.rng 4.0 -. 2.0)
    | locals when Ccsim.Rng.bool g.rng -> v (pick g locals)
    | _ -> f (Ccsim.Rng.float g.rng 4.0 -. 2.0)
  else
    match Ccsim.Rng.int g.rng 8 with
    | 0 -> gen_float_exp g (depth - 1) +.: gen_float_exp g (depth - 1)
    | 1 -> gen_float_exp g (depth - 1) -.: gen_float_exp g (depth - 1)
    | 2 -> gen_float_exp g (depth - 1) *.: gen_float_exp g (depth - 1)
    | 3 -> fmax (gen_float_exp g (depth - 1)) (gen_float_exp g (depth - 1))
    | 4 -> fabs_ (gen_float_exp g (depth - 1))
    | 5 -> i2f (gen_int_exp g (depth - 1))
    | 6 -> ld "floats" (safe_index g (gen_int_exp g (depth - 1)))
    | _ -> ld "fscratch" (safe_index g (gen_int_exp g (depth - 1)))

let gen_cond g depth =
  match Ccsim.Rng.int g.rng 3 with
  | 0 -> gen_int_exp g depth <: gen_int_exp g depth
  | 1 -> gen_float_exp g depth <.: gen_float_exp g depth
  | _ -> band (gen_int_exp g depth) (i 1)

let fresh_local g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let rec gen_stmt g depth =
  match Ccsim.Rng.int g.rng (if depth = 0 then 6 else 9) with
  | 0 ->
      let name =
        if g.int_locals <> [] && Ccsim.Rng.bool g.rng then pick g g.int_locals
        else begin
          let n = fresh_local g "iv" in
          g.int_locals <- n :: g.int_locals;
          n
        end
      in
      let_ name (gen_int_exp g 2)
  | 1 ->
      let name =
        if g.float_locals <> [] && Ccsim.Rng.bool g.rng then pick g g.float_locals
        else begin
          let n = fresh_local g "fv" in
          g.float_locals <- n :: g.float_locals;
          n
        end
      in
      let_ name (gen_float_exp g 2)
  | 2 -> store "ints" (safe_index g (gen_int_exp g 2)) (gen_int_exp g 2)
  | 3 -> store "floats" (safe_index g (gen_int_exp g 2)) (gen_float_exp g 2)
  | 4 -> store "iscratch" (safe_index g (gen_int_exp g 2)) (gen_int_exp g 2)
  | 5 -> store "fscratch" (safe_index g (gen_int_exp g 2)) (gen_float_exp g 2)
  | 6 ->
      let var = fresh_local g "loop" in
      let body = gen_block g (depth - 1) in
      g.int_locals <- var :: g.int_locals;
      for_ var (i 0) (i (1 + Ccsim.Rng.int g.rng 6)) body
  | 7 -> if_ (gen_cond g 2) (gen_block g (depth - 1)) (gen_block g (depth - 1))
  | _ ->
      if Ccsim.Rng.bool g.rng then
        memcpy ~dst:"iscratch" ~src:"ints" ~elems:(i (1 + Ccsim.Rng.int g.rng buf_len))
      else
        memcpy ~dst:"floats" ~src:"fscratch" ~elems:(i (1 + Ccsim.Rng.int g.rng buf_len))

and gen_block g depth =
  List.init (1 + Ccsim.Rng.int g.rng 3) (fun _ -> gen_stmt g (max 0 depth))

let gen_kernel seed =
  let g =
    { rng = Ccsim.Rng.create seed; int_locals = []; float_locals = []; fresh = 0 }
  in
  let body = List.init (2 + Ccsim.Rng.int g.rng 4) (fun _ -> gen_stmt g 2) in
  (* A local's defining Let may sit in a branch that never executes; a
     prelude binds every generated local so all references are defined. *)
  let prelude =
    List.map (fun name -> let_ name (i 0)) g.int_locals
    @ List.map (fun name -> let_ name (f 0.0)) g.float_locals
  in
  let body = prelude @ body in
  {
    name = Printf.sprintf "random_%d" seed;
    bufs =
      [ buf "ints" I64 buf_len; buf "floats" F64 buf_len;
        buf ~writable:false "ro" I32 buf_len ];
    scratch = [ buf "iscratch" I64 buf_len; buf "fscratch" F64 buf_len ];
    body;
  }

(* ------------------------------------------------------------------ *)
(* The four engines                                                     *)
(* ------------------------------------------------------------------ *)

let init_value name idx : Kernel.Value.t =
  match name with
  | "ints" -> VI ((idx * 37) - 11)
  | "ro" -> VI (idx - 5)
  | "floats" -> VF ((float_of_int idx *. 0.75) -. 3.0)
  | _ -> VI 0

let interp_reference kernel =
  let arrays =
    List.map
      (fun (d : buf_decl) ->
        (d.buf_name, Array.init d.len (fun idx -> init_value d.buf_name idx)))
      kernel.bufs
  in
  let m = Kernel.Interp.pure_machine ~bufs:arrays () in
  Kernel.Interp.run kernel m;
  arrays

let with_memory_engine kernel run_engine =
  let mem = Tagmem.Mem.create ~size:(1 lsl 16) in
  let heap = Tagmem.Alloc.create ~base:1024 ~size:((1 lsl 16) - 1024) in
  let layout =
    Memops.Layout.make
      (List.map
         (fun (decl : buf_decl) ->
           let bytes = buf_decl_bytes decl in
           let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
           { Memops.Layout.decl; base = Tagmem.Alloc.malloc heap ~align padded })
         kernel.bufs)
  in
  List.iter
    (fun (binding : Memops.Layout.binding) ->
      Memops.Layout.init_buffer mem binding (fun idx ->
          init_value binding.decl.buf_name idx))
    (Memops.Layout.bindings layout);
  run_engine mem heap layout;
  List.map
    (fun (decl : buf_decl) ->
      (decl.buf_name, Memops.Layout.read_buffer mem (Memops.Layout.find layout decl.buf_name)))
    kernel.bufs

let engine_abstract_cpu kernel =
  with_memory_engine kernel (fun mem _heap layout ->
      let r = Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem kernel layout () in
      match r.Cpu.Model.trap with
      | None -> ()
      | Some reason -> Alcotest.failf "%s: abstract CPU trapped: %s" kernel.name reason)

let engine_core target kernel =
  with_memory_engine kernel (fun mem heap layout ->
      let r = Riscv.Exec.run_kernel ~target ~mem ~heap ~layout kernel in
      match r.Riscv.Exec.machine.Riscv.Machine.trap with
      | None -> ()
      | Some t ->
          Alcotest.failf "%s: core trapped at %d: %s" kernel.name t.Riscv.Machine.pc
            t.Riscv.Machine.reason)

let value_to_string = Kernel.Value.to_string

let compare_results kernel name (reference : (string * Kernel.Value.t array) list)
    actual =
  List.iter2
    (fun (bname, expected) (bname', got) ->
      assert (bname = bname');
      Array.iteri
        (fun idx e ->
          if not (Kernel.Value.equal e got.(idx)) then
            Alcotest.failf "%s: %s disagrees on %s[%d]: %s vs %s\n%s"
              kernel.name name bname idx (value_to_string e)
              (value_to_string got.(idx))
              (Kernel.Ir.to_string kernel))
        expected)
    reference actual

let differential seed =
  let kernel = gen_kernel seed in
  match Kernel.Ir.validate kernel with
  | Error msg -> Alcotest.failf "generated invalid kernel: %s" msg
  | Ok () ->
      let reference = interp_reference kernel in
      compare_results kernel "abstract-cpu" reference (engine_abstract_cpu kernel);
      compare_results kernel "rv64-core" reference
        (engine_core Riscv.Codegen.Rv64_target kernel);
      compare_results kernel "purecap-core" reference
        (engine_core Riscv.Codegen.Purecap_target kernel)

let test_differential_battery () =
  for seed = 1 to 150 do
    differential seed
  done

let test_differential_battery_deep () =
  for seed = 1000 to 1060 do
    differential seed
  done

let test_generator_is_deterministic () =
  let k1 = gen_kernel 42 and k2 = gen_kernel 42 in
  Alcotest.(check bool) "same kernel" true (k1 = k2)

let suite =
  [
    ("generator deterministic", `Quick, test_generator_is_deterministic);
    ("4-engine differential x150", `Slow, test_differential_battery);
    ("4-engine differential (more seeds)", `Slow, test_differential_battery_deep);
  ]
