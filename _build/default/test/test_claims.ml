(* Reproduction guard: the paper's headline quantitative claims, asserted as
   tests so a regression in any model immediately shows up as a broken
   claim rather than a silently different table.

   Paper §6 claims covered:
   - compute-parallel kernels see orders-of-magnitude speedup; backprop and
     viterbi top the chart (Fig. 7);
   - md_knn, stencil2d, bfs_bulk and bfs_queue run slower on the accelerator
     than on the cached CPU (Fig. 7);
   - the CapChecker's performance overhead is small — a few percent at the
     geomean (abstract: 1.4%) and largest in relative terms for md_knn, the
     shortest-running benchmark (Fig. 8);
   - the CapChecker needs at most as many entries as an IOMMU at equal
     safety, usually far fewer (Fig. 12). *)

let checkb = Alcotest.(check bool)

let compute (r : Soc.Run.result) = r.Soc.Run.phases.Soc.Run.compute

let speedup1 bench =
  let b = Machsuite.Registry.find bench in
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu b in
  let accel = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel b in
  float_of_int (compute cpu) /. float_of_int (compute accel)

let overheads bench =
  let b = Machsuite.Registry.find bench in
  let base = Soc.Run.run ~tasks:8 Soc.Config.ccpu_accel b in
  let cc = Soc.Run.run ~tasks:8 Soc.Config.ccpu_caccel b in
  let wall = float_of_int cc.Soc.Run.wall /. float_of_int base.Soc.Run.wall -. 1.0 in
  let offload r = r.Soc.Run.wall - r.Soc.Run.phases.Soc.Run.init in
  let off = float_of_int (offload cc) /. float_of_int (offload base) -. 1.0 in
  (wall, off)

let test_parallel_kernels_fly () =
  List.iter
    (fun (bench, floor) ->
      let s = speedup1 bench in
      checkb (Printf.sprintf "%s speedup %.0fx > %.0fx" bench s floor) true (s > floor))
    [ ("backprop", 300.0); ("viterbi", 300.0); ("md_grid", 100.0);
      ("gemm_ncubed", 20.0); ("gemm_blocked", 20.0) ]

let test_memory_bound_kernels_lose () =
  List.iter
    (fun bench ->
      let s = speedup1 bench in
      checkb (Printf.sprintf "%s speedup %.2fx < 1" bench s) true (s < 1.0))
    [ "md_knn"; "stencil2d"; "bfs_bulk"; "bfs_queue" ]

let representative =
  [ "aes"; "backprop"; "bfs_bulk"; "gemm_ncubed"; "kmp"; "md_knn"; "sort_merge";
    "stencil3d"; "viterbi" ]

let test_capchecker_overhead_small () =
  let walls =
    List.map (fun b -> let w, _ = overheads b in (b, w)) representative
  in
  List.iter
    (fun (b, w) ->
      checkb (Printf.sprintf "%s overhead %.2f%% < 6%%" b (w *. 100.)) true (w < 0.06))
    walls;
  let geo = Ccsim.Stats.geomean (List.map (fun (_, w) -> 1.0 +. w) walls) -. 1.0 in
  checkb (Printf.sprintf "geomean %.2f%% below 3.5%%" (geo *. 100.)) true (geo < 0.035)

let test_md_knn_is_the_relative_outlier () =
  let offs = List.map (fun b -> let _, o = overheads b in (b, o)) representative in
  let md = List.assoc "md_knn" offs in
  List.iter
    (fun (b, o) ->
      if b <> "md_knn" then
        checkb (Printf.sprintf "md_knn (%.2f%%) > %s (%.2f%%)" (md *. 100.) b (o *. 100.))
          true (md > o))
    offs

let test_fig12_capchecker_scales_better () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let bufs = b.kernel.Kernel.Ir.bufs in
      let cc = List.length bufs in
      let iommu =
        List.fold_left
          (fun acc d ->
            acc + Guard.Iommu.entries_for_range ~base:0 ~size:(Kernel.Ir.buf_decl_bytes d))
          0 bufs
      in
      checkb (b.name ^ ": capchecker needs no more entries") true (cc <= iommu))
    Machsuite.Registry.all;
  (* And strictly fewer for the large-buffer benchmarks the paper names. *)
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      let bufs = b.kernel.Kernel.Ir.bufs in
      let cc = List.length bufs in
      let iommu =
        List.fold_left
          (fun acc d ->
            acc + Guard.Iommu.entries_for_range ~base:0 ~size:(Kernel.Ir.buf_decl_bytes d))
          0 bufs
      in
      checkb (name ^ ": strictly fewer") true (cc < iommu))
    [ "gemm_ncubed"; "nw"; "stencil3d"; "kmp" ]

let test_ccpu_overhead_small_on_cpu_side () =
  (* Adding CHERI to the CPU costs little (Fig. 10's cpu vs ccpu bars). *)
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu b in
      let ccpu = Soc.Run.run ~tasks:1 Soc.Config.ccpu b in
      let r = float_of_int ccpu.Soc.Run.wall /. float_of_int cpu.Soc.Run.wall in
      checkb (Printf.sprintf "%s ccpu/cpu %.3f in [0.9, 1.1]" name r) true
        (r > 0.9 && r < 1.1))
    [ "aes"; "bfs_bulk"; "gemm_blocked"; "sort_merge" ]

let test_cheri_cpu_can_win_via_wide_copies () =
  (* sort_merge's copy-back passes run on the 128-bit capability copy path:
     the CHERI CPU beats the baseline (the paper's gemm_blocked observation,
     §6.3). *)
  let b = Machsuite.Registry.find "sort_merge" in
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu b in
  let ccpu = Soc.Run.run ~tasks:1 Soc.Config.ccpu b in
  checkb "ccpu faster than cpu on copy-heavy benchmark" true
    (ccpu.Soc.Run.wall < cpu.Soc.Run.wall)

let suite =
  [
    ("parallel kernels fly", `Slow, test_parallel_kernels_fly);
    ("memory-bound kernels lose", `Slow, test_memory_bound_kernels_lose);
    ("capchecker overhead small", `Slow, test_capchecker_overhead_small);
    ("md_knn relative outlier", `Slow, test_md_knn_is_the_relative_outlier);
    ("fig12 entry scaling", `Quick, test_fig12_capchecker_scales_better);
    ("ccpu overhead small", `Slow, test_ccpu_overhead_small_on_cpu_side);
    ("cheri wide copies win", `Slow, test_cheri_cpu_can_win_via_wide_copies);
  ]
