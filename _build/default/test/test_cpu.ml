(* The CPU model: cache behaviour, cost accounting, ISA deltas (CHERI traps,
   copy width, capability traffic). *)

open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------------- cache ---------------- *)

let test_cache_hit_miss () =
  let c = Cpu.Cache.create Cpu.Cache.default_config in
  let miss = Cpu.Cache.access c ~addr:0 in
  let hit = Cpu.Cache.access c ~addr:8 in
  checki "first touch misses" Cpu.Cache.default_config.miss_cycles miss;
  checki "same line hits" Cpu.Cache.default_config.hit_cycles hit;
  checki "hits" 1 (Cpu.Cache.hits c);
  checki "misses" 1 (Cpu.Cache.misses c)

let test_cache_conflict_eviction () =
  let c = Cpu.Cache.create Cpu.Cache.default_config in
  let size = Cpu.Cache.default_config.size_bytes in
  ignore (Cpu.Cache.access c ~addr:0);
  ignore (Cpu.Cache.access c ~addr:size);  (* same set, different line *)
  let again = Cpu.Cache.access c ~addr:0 in
  checki "evicted line misses again" Cpu.Cache.default_config.miss_cycles again

let test_cache_touch_range () =
  let c = Cpu.Cache.create Cpu.Cache.default_config in
  let cycles = Cpu.Cache.touch_range c ~addr:0 ~size:256 in
  (* 256 bytes = 4 lines, all cold. *)
  checki "four line fills" (4 * Cpu.Cache.default_config.miss_cycles) cycles;
  checki "zero-size range free" 0 (Cpu.Cache.touch_range c ~addr:0 ~size:0)

let test_cache_reset () =
  let c = Cpu.Cache.create Cpu.Cache.default_config in
  ignore (Cpu.Cache.access c ~addr:0);
  Cpu.Cache.reset c;
  checki "stats cleared" 0 (Cpu.Cache.misses c);
  checki "cold again" Cpu.Cache.default_config.miss_cycles (Cpu.Cache.access c ~addr:0)

(* ---------------- model ---------------- *)

let setup_layout kernel =
  let mem = Tagmem.Mem.create ~size:(1 lsl 20) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 20) - 4096) in
  let bindings =
    List.map
      (fun (decl : buf_decl) ->
        let bytes = Kernel.Ir.buf_decl_bytes decl in
        let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
        { Memops.Layout.decl; base = Tagmem.Alloc.malloc heap ~align padded })
      kernel.bufs
  in
  (mem, Memops.Layout.make bindings)

let sum_kernel =
  {
    name = "sum";
    bufs = [ buf ~writable:false "a" I64 64; buf "out" I64 1 ];
    scratch = [];
    body =
      [
        let_ "acc" (i 0);
        for_ "j" (i 0) (i 64) [ let_ "acc" (v "acc" +: ld "a" (v "j")) ];
        store "out" (i 0) (v "acc");
      ];
  }

let test_run_functional () =
  let mem, layout = setup_layout sum_kernel in
  let a = Memops.Layout.find layout "a" in
  Memops.Layout.init_buffer mem a (fun idx -> Kernel.Value.VI idx);
  let r = Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem sum_kernel layout () in
  checkb "no trap" true (r.Cpu.Model.trap = None);
  let out = Memops.Layout.find layout "out" in
  checki "sum" 2016
    (Kernel.Value.as_int
       (Memops.Layout.read_elem mem Kernel.Ir.I64 ~addr:out.Memops.Layout.base));
  checki "loads" 64 r.Cpu.Model.loads;
  checki "stores" 1 r.Cpu.Model.stores;
  checkb "cycles positive" true (r.Cpu.Model.cycles > 0)

let test_cheri_run_matches_functionally () =
  let mem1, layout1 = setup_layout sum_kernel in
  let mem2, layout2 = setup_layout sum_kernel in
  List.iter
    (fun (mem, layout) ->
      Memops.Layout.init_buffer mem
        (Memops.Layout.find layout "a")
        (fun idx -> Kernel.Value.VI (idx * 3)))
    [ (mem1, layout1); (mem2, layout2) ];
  let r1 = Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem1 sum_kernel layout1 () in
  let r2 =
    Cpu.Model.run (Cpu.Model.config Cpu.Model.Cheri_rv64) mem2 sum_kernel layout2 ()
  in
  checkb "both clean" true (r1.Cpu.Model.trap = None && r2.Cpu.Model.trap = None);
  let read layout mem =
    let out = Memops.Layout.find layout "out" in
    Kernel.Value.as_int
      (Memops.Layout.read_elem mem Kernel.Ir.I64 ~addr:out.Memops.Layout.base)
  in
  checki "same result" (read layout1 mem1) (read layout2 mem2);
  checkb "cheri costs a little more" true (r2.Cpu.Model.cycles >= r1.Cpu.Model.cycles)

let oob_kernel =
  {
    name = "oob";
    bufs = [ buf "a" I64 8; buf "out" I64 1 ];
    scratch = [];
    body = [ store "out" (i 0) (ld "a" (i 200)) ];
  }

let test_cheri_traps_on_oob () =
  let mem, layout = setup_layout oob_kernel in
  let r = Cpu.Model.run (Cpu.Model.config Cpu.Model.Cheri_rv64) mem oob_kernel layout () in
  checkb "trapped" true (r.Cpu.Model.trap <> None)

let test_rv64_does_not_trap_on_oob () =
  (* The unprotected CPU silently reads whatever is there — that is the
     baseline's weakness, and the model must reproduce it. *)
  let mem, layout = setup_layout oob_kernel in
  let r = Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem oob_kernel layout () in
  checkb "no trap" true (r.Cpu.Model.trap = None)

let test_cheri_traps_on_readonly_write () =
  let k =
    {
      name = "wro";
      bufs = [ buf ~writable:false "a" I64 8; buf "out" I64 1 ];
      scratch = [];
      (* Validation would reject a direct store; the attack path is memcpy
         semantics via an aliased kernel, so here we bypass validation and
         interpret directly (the CPU doesn't run the validator). *)
      body = [ Store ("a", i 0, i 1) ];
    }
  in
  let mem, layout = setup_layout k in
  let r = Cpu.Model.run (Cpu.Model.config Cpu.Model.Cheri_rv64) mem k layout () in
  checkb "trapped on read-only store" true (r.Cpu.Model.trap <> None)

let copy_kernel n =
  {
    name = "copy";
    bufs = [ buf ~writable:false "src" I64 n; buf "dst" I64 n ];
    scratch = [];
    body = [ memcpy ~dst:"dst" ~src:"src" ~elems:(i n) ];
  }

let test_cheri_copies_faster () =
  let k = copy_kernel 512 in
  let mem1, layout1 = setup_layout k in
  let mem2, layout2 = setup_layout k in
  let r1 = Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem1 k layout1 () in
  let r2 = Cpu.Model.run (Cpu.Model.config Cpu.Model.Cheri_rv64) mem2 k layout2 () in
  checkb "128-bit copies beat 64-bit" true (r2.Cpu.Model.cycles < r1.Cpu.Model.cycles)

let test_cap_setup_cycles () =
  checki "rv64 free" 0
    (Cpu.Model.cap_setup_cycles (Cpu.Model.config Cpu.Model.Rv64) ~n_bufs:5);
  checkb "cheri pays per buffer" true
    (Cpu.Model.cap_setup_cycles (Cpu.Model.config Cpu.Model.Cheri_rv64) ~n_bufs:5 > 0)

let test_area () =
  checkb "cheri extension costs area" true
    (Cpu.Model.area_luts Cpu.Model.Cheri_rv64 > Cpu.Model.area_luts Cpu.Model.Rv64)

let suite =
  [
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache conflict", `Quick, test_cache_conflict_eviction);
    ("cache touch_range", `Quick, test_cache_touch_range);
    ("cache reset", `Quick, test_cache_reset);
    ("functional run", `Quick, test_run_functional);
    ("cheri functional parity", `Quick, test_cheri_run_matches_functionally);
    ("cheri traps on OOB", `Quick, test_cheri_traps_on_oob);
    ("rv64 silent on OOB", `Quick, test_rv64_does_not_trap_on_oob);
    ("cheri traps on RO write", `Quick, test_cheri_traps_on_readonly_write);
    ("cheri memcpy faster", `Quick, test_cheri_copies_faster);
    ("cap setup cycles", `Quick, test_cap_setup_cycles);
    ("area", `Quick, test_area);
  ]
