lib/driver/driver.mli: Backend Bus Cheri Guard Kernel Memops Revoker Tagmem
