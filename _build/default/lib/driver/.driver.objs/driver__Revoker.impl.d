lib/driver/revoker.ml: Capchecker Cheri List Tagmem
