lib/driver/backend.ml: Accel Capchecker Guard Tagmem
