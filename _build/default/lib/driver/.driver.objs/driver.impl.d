lib/driver/driver.ml: Array Backend Bus Capchecker Cheri Guard Hashtbl Int64 Kernel List Memops Printf Revoker Tagmem
