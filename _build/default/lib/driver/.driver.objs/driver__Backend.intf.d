lib/driver/backend.mli: Accel Capchecker Guard
