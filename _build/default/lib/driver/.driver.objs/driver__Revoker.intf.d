lib/driver/revoker.mli: Capchecker Tagmem
