(** The kernel interpreter.

    One interpreter, many machines: the [machine] record abstracts where
    buffer elements live and what executing costs.  The CPU model, the
    accelerator model and the pure reference machine all plug in here, so
    functional behaviour is identical by construction across every system
    configuration — only timing and protection differ. *)

type cost =
  | Alu      (** integer add/sub/logic/compare/shift, conversions *)
  | Imul
  | Idiv     (** integer divide and modulo *)
  | Fadd     (** FP add/sub/compare/min/max *)
  | Fmul
  | Fdiv
  | Fspec    (** sqrt, exp *)
  | Branch   (** taken control-flow decisions, loop back-edges *)
  | Sram     (** accelerator-internal scratch (BRAM) / CPU stack-array access *)

exception Aborted of string
(** Raised by a machine when the protection hardware denies an access; the
    task stops immediately (the CapChecker raises its exception flag and the
    driver will clean up). *)

exception Fuel_exhausted
(** A [While] exceeded the interpreter's iteration budget — treated as a
    kernel bug in tests. *)

type machine = {
  load : string -> idx:int -> dependent:bool -> Value.t;
  store : string -> idx:int -> Value.t -> unit;
  copy : dst:string -> src:string -> elems:int -> unit;
  tick : cost -> int -> unit;
  param : string -> Value.t;
}

val run : ?fuel:int -> Ir.t -> machine -> unit
(** Execute the kernel body.  [fuel] bounds total [While] iterations
    (default 100 million).

    Scratch memories ({!Ir.t.scratch}) are handled entirely inside the
    interpreter: they are zero-initialised arrays private to the run, their
    accesses cost [Sram] ticks, and they never reach the machine's
    [load]/[store] — matching hardware, where internal BRAM traffic is
    invisible on the memory interface.  An out-of-range scratch index raises
    {!Aborted} (internal address wrap is not a DMA-visible event). *)

val pure_machine :
  bufs:(string * Value.t array) list ->
  ?params:(string * Value.t) list ->
  unit ->
  machine
(** The reference machine: buffers are plain arrays, costs are discarded.
    Out-of-range indices raise [Invalid_argument] — the reference semantics
    has no out-of-bounds behaviour to exploit; only the hardware models do. *)

val eval_binop : Ir.binop -> Value.t -> Value.t -> Value.t
val eval_unop : Ir.unop -> Value.t -> Value.t
val cost_of_binop : Ir.binop -> cost
val cost_of_unop : Ir.unop -> cost
