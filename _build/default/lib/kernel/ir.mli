(** The kernel intermediate representation.

    A kernel is the high-level source of a MachSuite benchmark: typed data
    buffers plus an imperative body of loops, loads, stores and arithmetic.
    The same IR is executed three ways:
    - by {!Interp} over plain arrays (reference semantics, golden outputs);
    - by the CPU cost model (lib/cpu), producing cycle counts;
    - by the accelerator model (lib/accel), producing the DMA access stream
      that flows through the protection hardware — mirroring how Vitis HLS
      turns the same C source into an accelerator.

    Booleans are integers (0 = false); floats are IEEE doubles regardless of
    the buffer element type (storage narrows to [F32] on store). *)

type elem = U8 | I32 | I64 | F32 | F64

val elem_bytes : elem -> int
val elem_is_float : elem -> bool

type buf_decl = {
  buf_name : string;
  elem : elem;
  len : int;          (** length in elements *)
  writable : bool;    (** false = the driver grants a read-only capability *)
}

val buf_decl_bytes : buf_decl -> int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Imin | Imax
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Fmin | Fmax

type unop = Neg | Bnot | Fneg | Fabs | Fsqrt | Fexp | I2f | F2i

type exp =
  | Int of int
  | Flt of float
  | Var of string             (** scalar local *)
  | Param of string           (** runtime parameter supplied at launch *)
  | Load of string * exp      (** buffer element read *)
  | Bin of binop * exp * exp
  | Un of unop * exp

type stmt =
  | Let of string * exp                       (** bind or reassign a local *)
  | Store of string * exp * exp               (** buffer, index, value *)
  | For of string * exp * exp * stmt list
      (** [for v = lo; v < hi; v++] with C semantics: bounds evaluated once,
          body writes to [v] do not change the trip count, and [v] holds
          [max lo hi] after the loop ([lo] when it never ran) *)
  | While of exp * stmt list
  | If of exp * stmt list * stmt list
  | Memcpy of { dst : string; src : string; elems : exp }
      (** block copy between equal-element-type buffers *)

type t = {
  name : string;
  bufs : buf_decl list;
      (** heap objects: driver-allocated, DMA-visible, protection-checked *)
  scratch : buf_decl list;
      (** accelerator-internal memories (BRAM) / CPU stack arrays — the
          "stack objects" of the paper's CWE analysis: never exposed on the
          memory interface, so no DMA and no protection entry *)
  body : stmt list;
}

val find_buf : t -> string -> buf_decl
(** Raises [Not_found]. *)

val validate : t -> (unit, string) result
(** Static sanity: buffer references resolve, buffer names unique, memcpy
    element types agree, stores only target writable buffers. *)

val contains_load : exp -> bool
(** Used to classify a load as {e dependent} (pointer-chasing: its index is
    itself loaded from memory, so the access cannot be issued until the
    previous load returns). *)

(** {1 Builder combinators} — the surface syntax the MachSuite kernels are
    written in. *)

val i : int -> exp
val f : float -> exp
val v : string -> exp
val p : string -> exp
val ld : string -> exp -> exp

val ( +: ) : exp -> exp -> exp
val ( -: ) : exp -> exp -> exp
val ( *: ) : exp -> exp -> exp
val ( /: ) : exp -> exp -> exp
val ( %: ) : exp -> exp -> exp
val ( <: ) : exp -> exp -> exp
val ( <=: ) : exp -> exp -> exp
val ( >: ) : exp -> exp -> exp
val ( >=: ) : exp -> exp -> exp
val ( =: ) : exp -> exp -> exp
val ( <>: ) : exp -> exp -> exp
val ( &&: ) : exp -> exp -> exp
val ( ||: ) : exp -> exp -> exp
val band : exp -> exp -> exp
val bor : exp -> exp -> exp
val bxor : exp -> exp -> exp
val shl : exp -> exp -> exp
val shr : exp -> exp -> exp
val imin : exp -> exp -> exp
val imax : exp -> exp -> exp

val ( +.: ) : exp -> exp -> exp
val ( -.: ) : exp -> exp -> exp
val ( *.: ) : exp -> exp -> exp
val ( /.: ) : exp -> exp -> exp
val ( <.: ) : exp -> exp -> exp
val ( <=.: ) : exp -> exp -> exp
val ( >.: ) : exp -> exp -> exp
val ( >=.: ) : exp -> exp -> exp
val fmin : exp -> exp -> exp
val fmax : exp -> exp -> exp
val fsqrt : exp -> exp
val fexp : exp -> exp
val fabs_ : exp -> exp
val i2f : exp -> exp
val f2i : exp -> exp

val let_ : string -> exp -> stmt
val store : string -> exp -> exp -> stmt
val for_ : string -> exp -> exp -> stmt list -> stmt
val while_ : exp -> stmt list -> stmt
val if_ : exp -> stmt list -> stmt list -> stmt
val when_ : exp -> stmt list -> stmt
val memcpy : dst:string -> src:string -> elems:exp -> stmt

val buf : ?writable:bool -> string -> elem -> int -> buf_decl

(** {1 Pretty printing} (debugging and disassembly-style dumps) *)

val exp_to_string : exp -> string
val stmt_to_string : ?indent:int -> stmt -> string
val to_string : t -> string
