(** Runtime values of the kernel IR: 64-bit integers or IEEE doubles. *)

type t = VI of int | VF of float

exception Type_error of string

val as_int : t -> int
(** Raises {!Type_error} on a float. *)

val as_float : t -> float
(** Raises {!Type_error} on an int. *)

val truthy : t -> bool
(** Nonzero integer.  Floats are not valid conditions (raises). *)

val equal : t -> t -> bool
val to_string : t -> string
