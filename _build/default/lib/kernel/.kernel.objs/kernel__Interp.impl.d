lib/kernel/interp.ml: Array Float Hashtbl Ir List Printf Value
