lib/kernel/ir.mli:
