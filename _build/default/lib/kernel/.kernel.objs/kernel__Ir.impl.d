lib/kernel/ir.ml: List Printf String
