lib/kernel/interp.mli: Ir Value
