lib/kernel/value.ml: Float Printf
