lib/kernel/value.mli:
