type cost = Alu | Imul | Idiv | Fadd | Fmul | Fdiv | Fspec | Branch | Sram

exception Aborted of string
exception Fuel_exhausted

type machine = {
  load : string -> idx:int -> dependent:bool -> Value.t;
  store : string -> idx:int -> Value.t -> unit;
  copy : dst:string -> src:string -> elems:int -> unit;
  tick : cost -> int -> unit;
  param : string -> Value.t;
}

let cost_of_binop : Ir.binop -> cost = function
  | Add | Sub | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne | Imin | Imax -> Alu
  | Mul -> Imul
  | Div | Mod -> Idiv
  | Fadd | Fsub | Flt | Fle | Fgt | Fge | Fmin | Fmax -> Fadd
  | Fmul -> Fmul
  | Fdiv -> Fdiv

let cost_of_unop : Ir.unop -> cost = function
  | Neg | Bnot | I2f | F2i -> Alu
  | Fneg | Fabs -> Fadd
  | Fsqrt | Fexp -> Fspec

let bool_val b = Value.VI (if b then 1 else 0)

let eval_binop (op : Ir.binop) a b =
  let open Value in
  match op with
  | Add -> VI (as_int a + as_int b)
  | Sub -> VI (as_int a - as_int b)
  | Mul -> VI (as_int a * as_int b)
  | Div ->
      let d = as_int b in
      if d = 0 then raise (Aborted "integer division by zero") else VI (as_int a / d)
  | Mod ->
      let d = as_int b in
      if d = 0 then raise (Aborted "integer modulo by zero") else VI (as_int a mod d)
  | Band -> VI (as_int a land as_int b)
  | Bor -> VI (as_int a lor as_int b)
  | Bxor -> VI (as_int a lxor as_int b)
  | Shl -> VI (as_int a lsl as_int b)
  | Shr -> VI (as_int a asr as_int b)
  | Lt -> bool_val (as_int a < as_int b)
  | Le -> bool_val (as_int a <= as_int b)
  | Gt -> bool_val (as_int a > as_int b)
  | Ge -> bool_val (as_int a >= as_int b)
  | Eq -> bool_val (as_int a = as_int b)
  | Ne -> bool_val (as_int a <> as_int b)
  | Imin -> VI (min (as_int a) (as_int b))
  | Imax -> VI (max (as_int a) (as_int b))
  | Fadd -> VF (as_float a +. as_float b)
  | Fsub -> VF (as_float a -. as_float b)
  | Fmul -> VF (as_float a *. as_float b)
  | Fdiv -> VF (as_float a /. as_float b)
  | Flt -> bool_val (as_float a < as_float b)
  | Fle -> bool_val (as_float a <= as_float b)
  | Fgt -> bool_val (as_float a > as_float b)
  | Fge -> bool_val (as_float a >= as_float b)
  | Fmin -> VF (Float.min (as_float a) (as_float b))
  | Fmax -> VF (Float.max (as_float a) (as_float b))

let eval_unop (op : Ir.unop) a =
  let open Value in
  match op with
  | Neg -> VI (-as_int a)
  | Bnot -> VI (lnot (as_int a))
  | Fneg -> VF (-.as_float a)
  | Fabs -> VF (Float.abs (as_float a))
  | Fsqrt -> VF (sqrt (as_float a))
  | Fexp -> VF (exp (as_float a))
  | I2f -> VF (float_of_int (as_int a))
  | F2i -> VI (int_of_float (as_float a))

let zero_of elem : Value.t =
  if Ir.elem_is_float elem then Value.VF 0.0 else Value.VI 0

let run ?(fuel = 100_000_000) (k : Ir.t) m =
  let locals : (string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let scratch : (string, Value.t array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.buf_decl) ->
      Hashtbl.add scratch b.buf_name (Array.make b.len (zero_of b.elem)))
    k.scratch;
  let scratch_get name idx =
    let a = Hashtbl.find scratch name in
    if idx < 0 || idx >= Array.length a then
      raise (Aborted (Printf.sprintf "scratch %s index %d out of bounds" name idx))
    else a.(idx)
  in
  let scratch_set name idx value =
    let a = Hashtbl.find scratch name in
    if idx < 0 || idx >= Array.length a then
      raise (Aborted (Printf.sprintf "scratch %s index %d out of bounds" name idx))
    else a.(idx) <- value
  in
  let is_scratch name = Hashtbl.mem scratch name in
  let fuel_left = ref fuel in
  let rec eval (e : Ir.exp) : Value.t =
    match e with
    | Int n -> Value.VI n
    | Flt x -> Value.VF x
    | Var name -> (
        match Hashtbl.find_opt locals name with
        | Some value -> value
        | None -> raise (Value.Type_error ("unbound local " ^ name)))
    | Param name -> m.param name
    | Load (b, idx_exp) ->
        let dependent = Ir.contains_load idx_exp in
        let idx = Value.as_int (eval idx_exp) in
        if is_scratch b then begin
          m.tick Sram 1;
          scratch_get b idx
        end
        else m.load b ~idx ~dependent
    | Bin (op, x, y) ->
        let a = eval x in
        let b = eval y in
        m.tick (cost_of_binop op) 1;
        eval_binop op a b
    | Un (op, x) ->
        let a = eval x in
        m.tick (cost_of_unop op) 1;
        eval_unop op a
  in
  let rec exec (s : Ir.stmt) =
    match s with
    | Let (name, e) -> Hashtbl.replace locals name (eval e)
    | Store (b, idx_exp, value_exp) ->
        let idx = Value.as_int (eval idx_exp) in
        let value = eval value_exp in
        if is_scratch b then begin
          m.tick Sram 1;
          scratch_set b idx value
        end
        else m.store b ~idx value
    | For (var, lo_exp, hi_exp, body) ->
        let lo = Value.as_int (eval lo_exp) in
        let hi = Value.as_int (eval hi_exp) in
        (* C semantics: the variable is assigned [lo] even for a zero-trip
           loop and holds [hi] afterwards; writes to it from the body do not
           affect the trip count. *)
        Hashtbl.replace locals var (Value.VI lo);
        for j = lo to hi - 1 do
          Hashtbl.replace locals var (Value.VI j);
          m.tick Branch 1;
          List.iter exec body
        done;
        Hashtbl.replace locals var (Value.VI (max lo hi))
    | While (cond, body) ->
        let rec loop () =
          m.tick Branch 1;
          if Value.truthy (eval cond) then begin
            decr fuel_left;
            if !fuel_left <= 0 then raise Fuel_exhausted;
            List.iter exec body;
            loop ()
          end
        in
        loop ()
    | If (cond, then_, else_) ->
        m.tick Branch 1;
        if Value.truthy (eval cond) then List.iter exec then_
        else List.iter exec else_
    | Memcpy { dst; src; elems } ->
        let n = Value.as_int (eval elems) in
        if n < 0 then raise (Aborted "memcpy with negative length");
        (* Copies touching scratch lower to element transfers: one side is a
           DMA stream, the other is internal BRAM. *)
        (match (is_scratch dst, is_scratch src) with
        | false, false -> m.copy ~dst ~src ~elems:n
        | true, true ->
            m.tick Sram (2 * n);
            for idx = 0 to n - 1 do
              scratch_set dst idx (scratch_get src idx)
            done
        | true, false ->
            m.tick Sram n;
            for idx = 0 to n - 1 do
              scratch_set dst idx (m.load src ~idx ~dependent:false)
            done
        | false, true ->
            m.tick Sram n;
            for idx = 0 to n - 1 do
              m.store dst ~idx (scratch_get src idx)
            done)
  in
  List.iter exec k.body

let pure_machine ~bufs ?(params = []) () =
  let arr name =
    match List.assoc_opt name bufs with
    | Some a -> a
    | None -> invalid_arg ("pure_machine: unknown buffer " ^ name)
  in
  {
    load = (fun b ~idx ~dependent:_ -> (arr b).(idx));
    store = (fun b ~idx value -> (arr b).(idx) <- value);
    copy =
      (fun ~dst ~src ~elems ->
        Array.blit (arr src) 0 (arr dst) 0 elems);
    tick = (fun _ _ -> ());
    param =
      (fun name ->
        match List.assoc_opt name params with
        | Some value -> value
        | None -> invalid_arg ("pure_machine: unknown param " ^ name));
  }
