type t = VI of int | VF of float

exception Type_error of string

let as_int = function
  | VI n -> n
  | VF x -> raise (Type_error (Printf.sprintf "expected int, got float %g" x))

let as_float = function
  | VF x -> x
  | VI n -> raise (Type_error (Printf.sprintf "expected float, got int %d" n))

let truthy v = as_int v <> 0

let equal a b =
  match (a, b) with
  | VI x, VI y -> x = y
  | VF x, VF y -> Float.equal x y
  | VI _, VF _ | VF _, VI _ -> false

let to_string = function VI n -> string_of_int n | VF x -> Printf.sprintf "%g" x
