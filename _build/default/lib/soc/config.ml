type protection =
  | Prot_none
  | Prot_naive
  | Prot_iopmp
  | Prot_iommu
  | Prot_snpu
  | Prot_cc_fine
  | Prot_cc_coarse
  | Prot_cc_cached

type t =
  | Cpu_only of Cpu.Model.isa
  | Hetero of { cpu_isa : Cpu.Model.isa; protection : protection }

let label = function
  | Cpu_only Cpu.Model.Rv64 -> "cpu"
  | Cpu_only Cpu.Model.Cheri_rv64 -> "ccpu"
  | Hetero { cpu_isa; protection } -> (
      let cpu = match cpu_isa with Cpu.Model.Rv64 -> "cpu" | Cpu.Model.Cheri_rv64 -> "ccpu" in
      match protection with
      | Prot_none | Prot_naive -> cpu ^ "+accel"
      | Prot_iopmp -> cpu ^ "+accel(iopmp)"
      | Prot_iommu -> cpu ^ "+accel(iommu)"
      | Prot_snpu -> cpu ^ "+accel(snpu)"
      | Prot_cc_fine -> cpu ^ "+caccel"
      | Prot_cc_coarse -> cpu ^ "+caccel(coarse)"
      | Prot_cc_cached -> cpu ^ "+caccel(cached)")

let cpu = Cpu_only Cpu.Model.Rv64
let ccpu = Cpu_only Cpu.Model.Cheri_rv64
let cpu_accel = Hetero { cpu_isa = Cpu.Model.Rv64; protection = Prot_none }
let ccpu_accel = Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Prot_naive }
let ccpu_caccel = Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Prot_cc_fine }
let ccpu_caccel_coarse =
  Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Prot_cc_coarse }

let ccpu_caccel_cached =
  Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Prot_cc_cached }

let evaluated = [ cpu; ccpu; cpu_accel; ccpu_accel; ccpu_caccel ]
