lib/soc/run.ml: Accel Array Bus Cheri Config Cpu Driver Guard Hls Kernel List Machsuite Memops Option Power System Tagmem
