lib/soc/system.mli: Bus Capchecker Config Cpu Driver Guard Tagmem
