lib/soc/system.ml: Bus Capchecker Config Cpu Driver Guard Option Tagmem
