lib/soc/config.mli: Cpu
