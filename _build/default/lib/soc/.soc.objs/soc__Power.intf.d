lib/soc/power.mli:
