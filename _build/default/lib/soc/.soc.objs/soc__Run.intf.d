lib/soc/run.mli: Bus Config Guard Machsuite
