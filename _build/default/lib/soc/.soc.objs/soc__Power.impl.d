lib/soc/power.ml: Float
