lib/soc/config.ml: Cpu
