(** FPGA power model, calibrated for relative comparisons (Figure 8's power
    overhead): static floor + per-LUT leakage/clocking + dynamic toggling
    proportional to interconnect utilization. *)

val power_mw : luts:int -> utilization:float -> float
(** [utilization] is data beats per cycle on the fabric, in [\[0, 1\]]. *)
