let power_mw ~luts ~utilization =
  let utilization = Float.max 0.0 (Float.min 1.0 utilization) in
  1_500.0 +. (0.005 *. float_of_int luts) +. (900.0 *. utilization)
