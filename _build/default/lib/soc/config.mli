(** The system configurations evaluated in §6.3.

    Five headline configurations (Fig. 10) plus the alternative protection
    backends used by the security analysis (Table 3) and the scalability
    comparison (Fig. 12). *)

type protection =
  | Prot_none
      (** unguarded accelerator in a capability-less system *)
  | Prot_naive
      (** unguarded accelerator naively wired into a CHERI system: DMA writes
          reach tagged memory without clearing tags — the forgeable-
          capability hazard of Figure 2 *)
  | Prot_iopmp
  | Prot_iommu
  | Prot_snpu
  | Prot_cc_fine
  | Prot_cc_coarse
  | Prot_cc_cached
      (** the cached CapChecker of §5.2.3: small on-chip cache backed by an
          in-memory capability table (ablation configuration) *)

type t =
  | Cpu_only of Cpu.Model.isa
  | Hetero of { cpu_isa : Cpu.Model.isa; protection : protection }

val label : t -> string
(** The paper's names: "cpu", "ccpu", "cpu+accel", "ccpu+accel",
    "ccpu+caccel", and backend-suffixed labels for the rest. *)

val cpu : t
val ccpu : t
val cpu_accel : t
val ccpu_accel : t
val ccpu_caccel : t
(** The headline system: CHERI CPU + CapChecker (Fine) accelerators. *)

val ccpu_caccel_coarse : t
val ccpu_caccel_cached : t

val evaluated : t list
(** The five configurations of Figure 10, in the paper's order. *)
