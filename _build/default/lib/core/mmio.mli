(** The CapChecker's register-level programming interface.

    The driver does not call into the CapChecker — it writes memory-mapped
    registers over the dedicated capability interconnect (top of Figure 2).
    This module is that register file: a word-addressed window decoded into
    the operations of {!Checker}.  {!Driver} programs the hardware through
    these registers; the cycle costs it charges are exactly one bus write per
    register touched.

    Register map (64-bit registers, byte offsets from the window base):

    {v
    0x00  CAP_LO      write: low 64 bits of the staged capability
    0x08  CAP_HI      write: high 64 bits of the staged capability
    0x10  CAP_TAG     write: tag bit of the staged capability (bit 0)
    0x18  KEY         write: task id in [63:32], object id in [31:0]
    0x20  COMMAND     write: 1 = install staged capability under KEY
                             2 = evict KEY
                             3 = evict every entry of KEY's task
                             4 = clear the exception flag
    0x28  STATUS      read:  bit 0 = global exception flag
                             bit 1 = last command rejected (full/untagged)
                             [63:32] = live entry count
    0x30  EXC_KEY     read:  oldest unreported exception's task/object key
                             (format of KEY; all-ones when none)
    v}

    A malicious or buggy agent writing garbage through this window cannot
    forge authority: the staged capability's tag travels on the capability
    interconnect's tag wire ({!stage_raw} models a tag-less writer and can
    only ever stage untagged bits, which COMMAND=1 rejects). *)

type t

val create : Checker.t -> t
val checker : t -> Checker.t

val window_bytes : int
(** Size of the register window (one 4 KiB page). *)

(** {1 Bus-facing access} *)

val write : t -> offset:int -> int64 -> unit
(** Word write from the capability interconnect (the CPU side, which carries
    tags via {!stage_cap}).  Raises [Invalid_argument] on a misaligned or
    out-of-window offset; unknown registers are ignored (write-ignored), as
    hardware decodes them to nothing. *)

val read : t -> offset:int -> int64
(** Word read; undefined registers read as zero. *)

(** {1 Tag-carrying staging} *)

val stage_cap : t -> Cheri.Cap.t -> unit
(** Model of the CPU's capability store hitting CAP_LO/CAP_HI/CAP_TAG in one
    tagged 128-bit transfer — the only way a {e valid} capability enters the
    staging registers. *)

val stage_raw : t -> lo:int64 -> hi:int64 -> unit
(** Byte-level writes of the same registers from a tag-less master: the
    staged value is forcibly untagged (forgery through the window is
    impossible by construction). *)

(** {1 Register offsets (for drivers and tests)} *)

val reg_cap_lo : int
val reg_cap_hi : int
val reg_cap_tag : int
val reg_key : int
val reg_command : int
val reg_status : int
val reg_exc_key : int

val cmd_install : int64
val cmd_evict : int64
val cmd_evict_task : int64
val cmd_clear_flag : int64

val key_of : task:int -> obj:int -> int64
val split_key : int64 -> int * int

(** {1 Driver convenience} *)

val install : t -> task:int -> obj:int -> Cheri.Cap.t -> (unit, string) result
(** The full register sequence (stage + key + command + status check);
    costs 5 register accesses on the bus. *)

val last_rejected : t -> bool
