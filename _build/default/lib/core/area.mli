(** FPGA area model of the CapChecker, calibrated to §6.3:
    the 256-entry prototype occupies ~30k LUTs; the lightweight CFU variant
    for TinyML systems costs under 100 LUTs while the whole CFU system is
    around 10k. *)

val luts : entries:int -> int
(** Full CapChecker: capability table (CAM + storage), CHERI-Concentrate
    decoder, bounds comparators, exception logic. *)

val luts_lightweight : entries:int -> int
(** CFU variant: tiny table, no burst support, narrow address compare. *)

val prototype_entries : int
(** 256. *)
