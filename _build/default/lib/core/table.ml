type entry = {
  mutable cap : Cheri.Cap.t;
  mutable task : int;
  mutable obj : int;
  mutable live : bool;
  mutable exn_bit : bool;
}

type t = { slots : entry array }

let create ~entries =
  assert (entries > 0);
  let fresh () =
    { cap = Cheri.Cap.null; task = -1; obj = -1; live = false; exn_bit = false }
  in
  { slots = Array.init entries (fun _ -> fresh ()) }

let capacity t = Array.length t.slots

let live_count t =
  Array.fold_left (fun acc e -> if e.live then acc + 1 else acc) 0 t.slots

type install_result = Installed of int | Table_full | Rejected_untagged

let find_slot t pred =
  let n = Array.length t.slots in
  let rec go idx =
    if idx >= n then None
    else if pred t.slots.(idx) then Some idx
    else go (idx + 1)
  in
  go 0

let install t ~task ~obj cap =
  if not cap.Cheri.Cap.tag then Rejected_untagged
  else
    let slot =
      match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
      | Some idx -> Some idx
      | None -> find_slot t (fun e -> not e.live)
    in
    match slot with
    | None -> Table_full
    | Some idx ->
        let e = t.slots.(idx) in
        e.cap <- cap;
        e.task <- task;
        e.obj <- obj;
        e.live <- true;
        e.exn_bit <- false;
        Installed idx

let lookup t ~task ~obj =
  match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
  | Some idx -> Some t.slots.(idx)
  | None -> None

let mark_exception t ~task ~obj =
  match lookup t ~task ~obj with
  | Some e -> e.exn_bit <- true
  | None -> ()

let evict t ~task ~obj =
  match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
  | Some idx ->
      let e = t.slots.(idx) in
      e.live <- false;
      e.cap <- Cheri.Cap.null;
      true
  | None -> false

let evict_task t ~task =
  let n = ref 0 in
  Array.iter
    (fun e ->
      if e.live && e.task = task then begin
        e.live <- false;
        e.cap <- Cheri.Cap.null;
        incr n
      end)
    t.slots;
  !n

let entries_with_exceptions t =
  Array.fold_left
    (fun acc e -> if e.exn_bit then (e.task, e.obj) :: acc else acc)
    [] t.slots
  |> List.rev

let iter_live t f = Array.iter (fun e -> if e.live then f e) t.slots
