(* Fixed cost: capability decoder + exception unit + MMIO programming port.
   Per entry: 128-bit storage, (task, obj) CAM match and the mux trees. *)
let luts ~entries = 1_000 + (113 * entries)

let luts_lightweight ~entries = 20 + (18 * entries)

let prototype_entries = 256
