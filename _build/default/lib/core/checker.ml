type mode = Fine | Coarse

type t = {
  mode : mode;
  table : Table.t;
  mutable flag : bool;
  mutable log : (int * Guard.Iface.denial) list;  (* (task, denial), newest first *)
}

let create ?(entries = 256) mode = { mode; table = Table.create ~entries; flag = false; log = [] }

let mode t = t.mode
let table t = t.table

let check_latency = 1

let obj_id_bits = 8

let compose_coarse ~obj phys =
  assert (obj >= 0 && obj < 1 lsl obj_id_bits);
  assert (phys >= 0 && phys < Cheri.Cap.max_address);
  (obj lsl Cheri.Cap.max_address_bits) lor phys

let split_coarse addr =
  ( (addr lsr Cheri.Cap.max_address_bits) land ((1 lsl obj_id_bits) - 1),
    addr land (Cheri.Cap.max_address - 1) )

let deny t ~task ~obj detail =
  let denial = { Guard.Iface.code = "capchecker"; detail } in
  t.flag <- true;
  Table.mark_exception t.table ~task ~obj;
  t.log <- (task, denial) :: t.log;
  Guard.Iface.Denied denial

let check t (req : Guard.Iface.req) =
  let task = req.source in
  let obj, phys =
    match t.mode with
    | Fine -> (
        match req.port with
        | Some port -> (port, req.addr)
        | None -> (-1, req.addr))
    | Coarse -> split_coarse req.addr
  in
  if obj < 0 then
    deny t ~task ~obj:0 "fine-mode request without object provenance"
  else
    match Table.lookup t.table ~task ~obj with
    | None ->
        deny t ~task ~obj
          (Printf.sprintf "no capability for task %d object %d" task obj)
    | Some entry -> (
        let kind =
          match req.kind with
          | Guard.Iface.Read -> Cheri.Cap.Read
          | Guard.Iface.Write -> Cheri.Cap.Write
        in
        match Cheri.Cap.access_ok entry.Table.cap ~addr:phys ~size:req.size kind with
        | Ok () -> Guard.Iface.Granted { phys; latency = check_latency }
        | Error e ->
            deny t ~task ~obj
              (Printf.sprintf "task %d object %d: %s (%s)" task obj
                 (Cheri.Cap.error_to_string e)
                 (Guard.Iface.req_to_string req)))

let install t ~task ~obj cap = Table.install t.table ~task ~obj cap
let evict t ~task ~obj = Table.evict t.table ~task ~obj
let evict_task t ~task = Table.evict_task t.table ~task

let exception_flag t = t.flag
let clear_exception_flag t = t.flag <- false
let exception_log t = List.rev_map snd t.log

let exception_log_for t ~task =
  List.rev t.log
  |> List.filter_map (fun (owner, d) -> if owner = task then Some d else None)

let install_cycles (p : Bus.Params.t) = 3 * p.mmio_write
let evict_cycles (p : Bus.Params.t) = p.mmio_write
let poll_cycles (p : Bus.Params.t) = p.mmio_read

let area_luts t = Area.luts ~entries:(Table.capacity t.table)

let as_guard t =
  {
    Guard.Iface.info =
      {
        name = (match t.mode with Fine -> "capchecker-fine" | Coarse -> "capchecker-coarse");
        granularity =
          (match t.mode with Fine -> Guard.Iface.G_object | Coarse -> Guard.Iface.G_task);
        area_luts = area_luts t;
      };
    check = (fun req -> check t req);
    entries_in_use = (fun () -> Table.live_count t.table);
  }
