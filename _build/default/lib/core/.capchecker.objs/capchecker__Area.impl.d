lib/core/area.ml:
