lib/core/mmio.ml: Checker Cheri Int64 List Printf Table
