lib/core/table.mli: Cheri
