lib/core/cached.mli: Checker Cheri Guard Tagmem
