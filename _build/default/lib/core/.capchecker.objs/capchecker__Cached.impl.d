lib/core/cached.ml: Array Checker Cheri Guard Tagmem
