lib/core/area.mli:
