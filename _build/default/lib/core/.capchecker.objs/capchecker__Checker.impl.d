lib/core/checker.ml: Area Bus Cheri Guard List Printf Table
