lib/core/mmio.mli: Checker Cheri
