lib/core/table.ml: Array Cheri List
