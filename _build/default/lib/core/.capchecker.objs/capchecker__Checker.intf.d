lib/core/checker.mli: Bus Cheri Guard Table
