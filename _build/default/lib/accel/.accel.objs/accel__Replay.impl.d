lib/accel/replay.ml: Array Bus Guard List Queue Trace
