lib/accel/engine.ml: Bus Capchecker Guard Hls Kernel List Memops Printf Tagmem Trace
