lib/accel/replay.mli: Bus Trace
