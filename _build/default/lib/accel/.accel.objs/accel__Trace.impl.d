lib/accel/trace.ml: Array Bus Guard
