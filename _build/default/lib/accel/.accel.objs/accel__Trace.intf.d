lib/accel/trace.mli: Bus Guard
