lib/accel/engine.mli: Bus Guard Hls Kernel Memops Tagmem Trace
