(** Timing replay: schedule the recorded DMA streams of all concurrent
    functional-unit instances through the shared interconnect.

    Models exactly the contention the paper's prototype exhibits: one grant
    per cycle on the AXI fabric, posted writes, pipelined streaming reads up
    to the FU's outstanding limit, and dependent (pointer-chasing) reads that
    stall their instance for the full round trip — including the guard's
    checking latency, which is otherwise hidden under pipelining. *)

type result = {
  makespan : int;
      (** cycles from start until the last instance's last transaction
          completes *)
  per_instance : (int * int) list;
      (** (instance id, completion cycle) *)
  bus_beats : int;  (** total data beats moved *)
}

type stream = {
  instance : int;
  trace : Trace.t;
  max_outstanding : int;
      (** this FU's streaming-read depth — mixed systems combine
          accelerators with different interface quality *)
}

val run : Bus.Fabric.t -> start:int -> stream list -> result
(** Replay every stream beginning at cycle [start].  Instances arbitrate in
    earliest-ready order (FIFO).  An empty trace completes at [start]. *)
