(** sNPU-style accelerator-specific protection (Feng et al., ISCA 2024),
    modeled as the paper's comparison point.

    sNPU integrates bounds registers inside the NPU: each task gets a set of
    allowed regions, checked on scratchpad/DMA access.  Protection is at task
    granularity — objects of the same task share one protection domain — and
    the scheme is tied to the accelerator's own architecture, so its metadata
    is ordinary (forgeable) configuration state rather than hardware-enforced
    unforgeable capabilities.  That mismatch with the CPU-side scheme is the
    heterogeneity weakness of §4.2. *)

type t

val create : ?regions_per_task:int -> unit -> t
(** [regions_per_task] defaults to 8 bounds-register pairs per task. *)

val grant : t -> source:int -> base:int -> size:int -> (unit, string) result
val revoke_task : t -> source:int -> unit
val as_guard : t -> Iface.t
