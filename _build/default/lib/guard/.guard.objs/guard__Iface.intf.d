lib/guard/iface.mli:
