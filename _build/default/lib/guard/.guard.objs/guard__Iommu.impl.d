lib/guard/iommu.ml: Array Hashtbl Iface List
