lib/guard/iopmp.mli: Iface
