lib/guard/snpu.mli: Iface
