lib/guard/snpu.ml: Hashtbl Iface List
