lib/guard/iface.ml: Printf
