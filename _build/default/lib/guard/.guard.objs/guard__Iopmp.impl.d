lib/guard/iopmp.ml: Iface List Printf
