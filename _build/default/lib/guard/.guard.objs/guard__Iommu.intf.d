lib/guard/iommu.mli: Iface
