(** IOMMU model: page-granularity protection with an IOTLB.

    Pages are 4 KiB (the paper's Figure 12 setting).  Since the prototype
    shares physical memory between CPU and accelerators, the page tables here
    are identity-mapped and only carry permissions — protection is what the
    paper compares, translation being orthogonal (§3.2).

    To make the comparison fair at equal safety (Fig. 12), the driver
    allocates at page alignment so no two buffers share a page; the IOMMU then
    needs [ceil(size / 4096)] entries per buffer, versus exactly one
    CapChecker entry. *)

type t

val page_size : int
(** 4096. *)

val create : ?tlb_entries:int -> unit -> t
(** [tlb_entries] defaults to 32. *)

val map_range :
  t -> source:int -> base:int -> size:int -> read:bool -> write:bool -> unit
(** Install permissions for every page overlapping [\[base, base+size)].
    A page already mapped for this source gets the union of permissions. *)

val unmap_source : t -> source:int -> unit

val entries_for_range : base:int -> size:int -> int
(** Pure page math: how many entries a buffer costs (Fig. 12). *)

val mapped_pages : t -> int

val as_guard : t -> Iface.t
(** Check latency models the IOTLB: 2 cycles on a hit, 20 on a miss (page
    walk to the in-memory table). *)
