(** RISC-V IOPMP model: a small, fully associative set of (source, region,
    permission) rules checked against every DMA transaction.

    The associative lookup is what makes real IOPMPs expensive, so
    implementations are "limited to single-digit or teen numbers of regions"
    (paper §3.2) — the driver therefore programs one region per {e task}
    arena rather than per buffer, yielding task-granularity protection. *)

type t

val create : ?regions:int -> unit -> t
(** [regions] defaults to 16. *)

val max_regions : t -> int

type rule = {
  source : int;   (** which DMA master the rule applies to *)
  base : int;
  top : int;      (** exclusive *)
  can_read : bool;
  can_write : bool;
}

val add_rule : t -> rule -> (unit, string) result
(** Fails when the region file is full. *)

val remove_rules_for : t -> source:int -> unit

val as_guard : t -> Iface.t
