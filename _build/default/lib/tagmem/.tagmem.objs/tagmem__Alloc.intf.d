lib/tagmem/alloc.mli:
