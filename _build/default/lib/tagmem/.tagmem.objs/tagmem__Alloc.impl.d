lib/tagmem/alloc.ml: Hashtbl List Mem Printf
