lib/tagmem/mem.ml: Bytes Char Cheri Int32 Int64
