type t = { data : Bytes.t; tags : Bytes.t }

let granule = 16

exception Out_of_range of { addr : int; size : int }

let create ~size =
  let size = (size + granule - 1) / granule * granule in
  { data = Bytes.make size '\000'; tags = Bytes.make (size / granule) '\000' }

let size t = Bytes.length t.data

let check t ~addr ~size:sz =
  if addr < 0 || sz < 0 || addr + sz > Bytes.length t.data then
    raise (Out_of_range { addr; size = sz })

let clear_tags t ~addr ~size:sz =
  if sz > 0 then
    for g = addr / granule to (addr + sz - 1) / granule do
      Bytes.set t.tags g '\000'
    done

let read_bytes t ~addr ~size:sz =
  check t ~addr ~size:sz;
  Bytes.sub t.data addr sz

let write_bytes t ~addr b =
  let sz = Bytes.length b in
  check t ~addr ~size:sz;
  Bytes.blit b 0 t.data addr sz;
  clear_tags t ~addr ~size:sz

let read_u8 t ~addr =
  check t ~addr ~size:1;
  Char.code (Bytes.get t.data addr)

let write_u8 t ~addr v =
  check t ~addr ~size:1;
  Bytes.set t.data addr (Char.chr (v land 0xff));
  clear_tags t ~addr ~size:1

let read_u32 t ~addr =
  check t ~addr ~size:4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xffffffff

let write_u32 t ~addr v =
  check t ~addr ~size:4;
  Bytes.set_int32_le t.data addr (Int32.of_int v);
  clear_tags t ~addr ~size:4

let read_u64 t ~addr =
  check t ~addr ~size:8;
  Bytes.get_int64_le t.data addr

let write_u64 t ~addr v =
  check t ~addr ~size:8;
  Bytes.set_int64_le t.data addr v;
  clear_tags t ~addr ~size:8

let read_f32 t ~addr = Int32.float_of_bits (Int32.of_int (read_u32 t ~addr))
let write_f32 t ~addr v = write_u32 t ~addr (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)
let read_f64 t ~addr = Int64.float_of_bits (read_u64 t ~addr)
let write_f64 t ~addr v = write_u64 t ~addr (Int64.bits_of_float v)

let fill t ~addr ~size:sz c =
  check t ~addr ~size:sz;
  Bytes.fill t.data addr sz c;
  clear_tags t ~addr ~size:sz

let unsafe_write_preserving_tags t ~addr b =
  let sz = Bytes.length b in
  check t ~addr ~size:sz;
  Bytes.blit b 0 t.data addr sz

let check_cap_addr addr =
  if addr mod granule <> 0 then
    invalid_arg "Mem: capability access must be 16-byte aligned"

let store_cap t ~addr cap =
  check_cap_addr addr;
  check t ~addr ~size:granule;
  let w = Cheri.Compress.encode cap in
  Bytes.set_int64_le t.data addr w.Cheri.Compress.lo;
  Bytes.set_int64_le t.data (addr + 8) w.Cheri.Compress.hi;
  Bytes.set t.tags (addr / granule) (if cap.Cheri.Cap.tag then '\001' else '\000')

let load_cap t ~addr =
  check_cap_addr addr;
  check t ~addr ~size:granule;
  let lo = Bytes.get_int64_le t.data addr in
  let hi = Bytes.get_int64_le t.data (addr + 8) in
  let tag = Bytes.get t.tags (addr / granule) <> '\000' in
  Cheri.Compress.decode ~tag { Cheri.Compress.hi; lo }

let tag_at t ~addr =
  check t ~addr ~size:1;
  Bytes.get t.tags (addr / granule) <> '\000'

let count_tags t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.tags;
  !n
