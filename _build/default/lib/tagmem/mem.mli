(** Tagged physical memory.

    A flat byte-addressable memory plus the out-of-band capability tag store:
    one tag bit per 16-byte granule, held in a shadow array that ordinary data
    reads and writes can never address (the paper's "shadow section of memory
    that is off-limits to normal memory access").

    The unforgeability mechanism is enforced here: {e any} raw write — in
    particular accelerator DMA — clears the tag of every granule it touches.
    Only {!store_cap}, reachable solely from capability-aware agents (the CPU
    model and the test bench), can set a tag. *)

type t

val granule : int
(** Bytes covered by one tag bit (16 = one 128-bit capability). *)

val create : size:int -> t
(** Zero-filled memory of [size] bytes (rounded up to a whole granule). *)

val size : t -> int

exception Out_of_range of { addr : int; size : int }
(** Raised on any access outside [0, size).  The interconnect decodes
    addresses before they reach memory, so in a full system this models a bus
    error. *)

(** {1 Raw (tag-clearing) data access} *)

val read_bytes : t -> addr:int -> size:int -> bytes
val write_bytes : t -> addr:int -> bytes -> unit

val read_u8 : t -> addr:int -> int
val write_u8 : t -> addr:int -> int -> unit
val read_u32 : t -> addr:int -> int
val write_u32 : t -> addr:int -> int -> unit
val read_u64 : t -> addr:int -> int64
val write_u64 : t -> addr:int -> int64 -> unit
val read_f32 : t -> addr:int -> float
val write_f32 : t -> addr:int -> float -> unit
val read_f64 : t -> addr:int -> float
val write_f64 : t -> addr:int -> float -> unit

val fill : t -> addr:int -> size:int -> char -> unit
(** Scrub a region (tag-clearing, like any write). *)

val unsafe_write_preserving_tags : t -> addr:int -> bytes -> unit
(** The {e naive} DMA write path: modifies data without touching granule
    tags.  This models a CHERI-unaware accelerator wired straight into
    tag-carrying memory — the integration mistake of Figure 1(a) that makes
    capabilities forgeable (an attacker rewrites the 128 bits underneath a
    still-set tag).  Only the unguarded system configuration and the attack
    test-bench use it; every protected path goes through {!write_bytes}. *)

(** {1 Capability access (CHERI-aware agents only)} *)

val store_cap : t -> addr:int -> Cheri.Cap.t -> unit
(** Store the 128-bit encoding at a 16-byte-aligned address and set the
    granule's tag to the capability's tag bit.
    Raises [Invalid_argument] on misalignment. *)

val load_cap : t -> addr:int -> Cheri.Cap.t
(** Load 128 bits plus the tag from a 16-byte-aligned address.  If the granule
    tag is clear the result is untagged (whatever bytes sit there do not form
    a usable capability). *)

val tag_at : t -> addr:int -> bool
(** The tag bit of the granule containing [addr]. *)

val count_tags : t -> int
(** Number of set tag bits (test observability). *)
