(** The driver's heap: a first-fit free-list allocator over a physical address
    range.  This is the [malloc()]/[free()] of the paper's bare-metal testbed;
    buffers for accelerator tasks come from here and capabilities are derived
    to exactly the allocated region. *)

type t

val create : base:int -> size:int -> t
(** An allocator managing [\[base, base+size)]. *)

exception Out_of_memory of int
(** Raised by {!malloc} when no free block fits; carries the request size. *)

val malloc : t -> ?align:int -> int -> int
(** [malloc t ~align size] returns the address of a fresh block of [size]
    bytes aligned to [align] (default {!Mem.granule}, so any buffer may hold
    capabilities and CHERI-Concentrate rounding stays exact for small
    objects).  Zero-size requests consume one alignment unit so that distinct
    allocations always have distinct addresses. *)

val free : t -> int -> unit
(** Release a block by its address.  Raises [Invalid_argument] if the address
    is not a live allocation (double free / invalid free — CWE 415/763 are the
    driver's responsibility, and it treats them as fatal). *)

val size_of : t -> int -> int
(** Size of the live allocation at the given address. *)

val live_blocks : t -> (int * int) list
(** All live [(addr, size)] pairs, sorted by address. *)

val bytes_free : t -> int
