type t = {
  base : int;
  limit : int;
  mutable free_list : (int * int) list;  (* (addr, size), sorted by addr *)
  live : (int, int) Hashtbl.t;           (* addr -> size *)
}

exception Out_of_memory of int

let create ~base ~size =
  { base; limit = base + size; free_list = [ (base, size) ]; live = Hashtbl.create 64 }

let align_up v a = (v + a - 1) / a * a

let malloc t ?(align = Mem.granule) size =
  if size < 0 then invalid_arg "Alloc.malloc: negative size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc.malloc: alignment must be a positive power of two";
  let size = max size 1 in
  let size = align_up size align in
  let rec fit acc = function
    | [] -> raise (Out_of_memory size)
    | (addr, blk_size) :: rest ->
        let start = align_up addr align in
        let waste = start - addr in
        if blk_size >= waste + size then begin
          (* Split: [addr,start) stays free, allocate [start,start+size),
             tail stays free. *)
          let tail_addr = start + size in
          let tail_size = blk_size - waste - size in
          let replacement =
            (if waste > 0 then [ (addr, waste) ] else [])
            @ if tail_size > 0 then [ (tail_addr, tail_size) ] else []
          in
          t.free_list <- List.rev_append acc (replacement @ rest);
          Hashtbl.replace t.live start size;
          start
        end
        else fit ((addr, blk_size) :: acc) rest
  in
  fit [] t.free_list

let coalesce list =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) list in
  let rec go = function
    | (a, sa) :: (b, sb) :: rest when a + sa = b -> go ((a, sa + sb) :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go sorted

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Alloc.free: 0x%x is not a live allocation" addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      t.free_list <- coalesce ((addr, size) :: t.free_list)

let size_of t addr =
  match Hashtbl.find_opt t.live addr with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Alloc.size_of: 0x%x is not live" addr)

let live_blocks t =
  Hashtbl.fold (fun a s acc -> (a, s) :: acc) t.live []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bytes_free t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list
