lib/memops/layout.ml: Array Bytes Char Hashtbl Int32 Int64 Ir Kernel List Tagmem Value
