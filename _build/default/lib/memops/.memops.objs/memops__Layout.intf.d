lib/memops/layout.mli: Kernel Tagmem
