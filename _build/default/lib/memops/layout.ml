type binding = { decl : Kernel.Ir.buf_decl; base : int }

type t = (string, binding) Hashtbl.t

let make bindings =
  let t = Hashtbl.create (List.length bindings) in
  List.iter
    (fun b ->
      let name = b.decl.Kernel.Ir.buf_name in
      if Hashtbl.mem t name then invalid_arg ("Layout.make: duplicate buffer " ^ name);
      Hashtbl.add t name b)
    bindings;
  t

let find t name =
  match Hashtbl.find_opt t name with Some b -> b | None -> raise Not_found

let bindings t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t []
  |> List.sort (fun a b -> compare a.base b.base)

let elem_addr b idx = b.base + (idx * Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem)

let sign_extend_32 v = if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let read_elem mem elem ~addr : Kernel.Value.t =
  match (elem : Kernel.Ir.elem) with
  | U8 -> VI (Tagmem.Mem.read_u8 mem ~addr)
  | I32 -> VI (sign_extend_32 (Tagmem.Mem.read_u32 mem ~addr))
  | I64 -> VI (Int64.to_int (Tagmem.Mem.read_u64 mem ~addr))
  | F32 -> VF (Tagmem.Mem.read_f32 mem ~addr)
  | F64 -> VF (Tagmem.Mem.read_f64 mem ~addr)

let write_elem mem elem ~addr (value : Kernel.Value.t) =
  match (elem : Kernel.Ir.elem) with
  | U8 -> Tagmem.Mem.write_u8 mem ~addr (Kernel.Value.as_int value)
  | I32 -> Tagmem.Mem.write_u32 mem ~addr (Kernel.Value.as_int value land 0xffff_ffff)
  | I64 -> Tagmem.Mem.write_u64 mem ~addr (Int64.of_int (Kernel.Value.as_int value))
  | F32 ->
      (* Narrow to single precision on store, like a real f32 buffer. *)
      let narrowed = Int32.float_of_bits (Int32.bits_of_float (Kernel.Value.as_float value)) in
      Tagmem.Mem.write_f32 mem ~addr narrowed
  | F64 -> Tagmem.Mem.write_f64 mem ~addr (Kernel.Value.as_float value)

let encode_bytes elem (value : Kernel.Value.t) =
  let open Kernel in
  match (elem : Ir.elem) with
  | U8 -> Bytes.make 1 (Char.chr (Value.as_int value land 0xff))
  | I32 ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (Value.as_int value));
      b
  | I64 ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int (Value.as_int value));
      b
  | F32 ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.bits_of_float (Value.as_float value));
      b
  | F64 ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.bits_of_float (Value.as_float value));
      b

let write_elem_preserving_tags mem elem ~addr value =
  Tagmem.Mem.unsafe_write_preserving_tags mem ~addr (encode_bytes elem value)

let init_buffer mem b gen =
  let elem = b.decl.Kernel.Ir.elem in
  for idx = 0 to b.decl.Kernel.Ir.len - 1 do
    write_elem mem elem ~addr:(elem_addr b idx) (gen idx)
  done

let read_buffer mem b =
  let elem = b.decl.Kernel.Ir.elem in
  Array.init b.decl.Kernel.Ir.len (fun idx -> read_elem mem elem ~addr:(elem_addr b idx))
