(** Placement of a kernel's buffers in physical memory, and element-level
    access to tagged memory.

    A layout is produced by the driver when it allocates a task's buffers and
    is consumed by both execution engines (CPU model and accelerator model),
    which turn element indices into physical byte addresses.  Note that
    {!elem_addr} performs {e no} bounds checking — address generation is the
    attacker-controlled part of the system; all checking happens in whatever
    protection hardware the configuration interposes. *)

type binding = { decl : Kernel.Ir.buf_decl; base : int }

type t

val make : binding list -> t
val find : t -> string -> binding
(** Raises [Not_found] for an unbound buffer name. *)

val bindings : t -> binding list

val elem_addr : binding -> int -> int
(** [elem_addr b idx = b.base + idx * elem_bytes] — for any [idx], including
    out-of-range ones. *)

val read_elem : Tagmem.Mem.t -> Kernel.Ir.elem -> addr:int -> Kernel.Value.t
(** Typed element load (sign-extending [I32], narrowing rules of the IR). *)

val write_elem :
  Tagmem.Mem.t -> Kernel.Ir.elem -> addr:int -> Kernel.Value.t -> unit

val write_elem_preserving_tags :
  Tagmem.Mem.t -> Kernel.Ir.elem -> addr:int -> Kernel.Value.t -> unit
(** The naive tag-oblivious DMA write path (see {!Tagmem.Mem}): used only by
    the unguarded accelerator configuration to demonstrate capability
    forgery. *)

val init_buffer :
  Tagmem.Mem.t -> binding -> (int -> Kernel.Value.t) -> unit
(** Fill a bound buffer element-by-element from a generator. *)

val read_buffer : Tagmem.Mem.t -> binding -> Kernel.Value.t array
