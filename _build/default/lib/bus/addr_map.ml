let dram_base = 0
let dram_size = 16 * 1024 * 1024
let heap_base = 1024 * 1024
let accel_ctrl_base = 0x1000_0000_0000
let accel_ctrl_stride = 0x1000
let capchecker_mmio_base = 0x2000_0000_0000

let ctrl_reg ~instance ~reg = accel_ctrl_base + (instance * accel_ctrl_stride) + (reg * 8)

let in_dram ~addr ~size =
  addr >= dram_base && size >= 0 && addr + size <= dram_base + dram_size
