lib/bus/params.ml:
