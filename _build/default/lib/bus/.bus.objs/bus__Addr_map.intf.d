lib/bus/addr_map.mli:
