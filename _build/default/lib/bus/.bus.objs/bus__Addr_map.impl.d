lib/bus/addr_map.ml:
