lib/bus/params.mli:
