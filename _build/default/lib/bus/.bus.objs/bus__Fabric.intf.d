lib/bus/fabric.mli: Params
