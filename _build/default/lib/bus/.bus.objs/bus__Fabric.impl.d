lib/bus/fabric.ml: Params
