type t = {
  p : Params.t;
  mutable free_at : int;
  mutable beats : int;
}

type grant = { granted_at : int; data_done : int; completed : int }

let create p = { p; free_at = 0; beats = 0 }
let params t = t.p

let request t ~at ~beats ~is_read ~extra_latency =
  assert (beats > 0 && at >= 0);
  let granted_at = max at t.free_at in
  let data_done = granted_at + t.p.Params.addr_phase + beats in
  t.free_at <- data_done;
  t.beats <- t.beats + beats;
  let mem_latency = if is_read then t.p.Params.read_latency else t.p.Params.write_latency in
  { granted_at; data_done; completed = data_done + mem_latency + extra_latency }

let busy_until t = t.free_at
let total_beats t = t.beats

let reset t =
  t.free_at <- 0;
  t.beats <- 0
