type t = {
  beat_bytes : int;
  max_burst : int;
  addr_phase : int;
  read_latency : int;
  write_latency : int;
  mmio_write : int;
  mmio_read : int;
}

let default =
  { beat_bytes = 8; max_burst = 16; addr_phase = 1; read_latency = 20;
    write_latency = 4; mmio_write = 6; mmio_read = 12 }

let beats_for t bytes = max 1 ((bytes + t.beat_bytes - 1) / t.beat_bytes)
