(** The system physical address map.

    One map shared by every configuration: DRAM at the bottom, then the
    accelerator control-register window and the CapChecker's capability MMIO
    window (reachable only from the CPU via the dedicated capability
    interconnect of Figure 2). *)

val dram_base : int
val dram_size : int

val heap_base : int
(** Start of the driver-managed heap inside DRAM (below it live the "OS"
    image and CPU task stacks that attacks like to aim at). *)

val accel_ctrl_base : int
(** Base of the accelerator control-register window. *)

val accel_ctrl_stride : int
(** Register window size per functional-unit instance. *)

val capchecker_mmio_base : int
(** Base of the CapChecker's capability-programming window. *)

val ctrl_reg : instance:int -> reg:int -> int
(** Address of control register [reg] of FU [instance]. *)

val in_dram : addr:int -> size:int -> bool
