(** Timing parameters of the AXI-style system interconnect.

    The prototype in the paper has one property that dominates accelerator
    performance: the interconnect grants {e one memory access per clock
    cycle}.  Everything else (DRAM latency, MMIO hop cost) is a fixed-latency
    knob.  These defaults are the calibration used for every experiment; they
    are plain data so sweeps can vary them. *)

type t = {
  beat_bytes : int;      (** data-bus width per beat (8 bytes) *)
  max_burst : int;       (** maximum beats per AXI burst (16) *)
  addr_phase : int;      (** address-phase cycles per transaction (1) —
                             what makes bursts cheaper than single beats *)
  read_latency : int;    (** DRAM read latency, request grant to data (20) *)
  write_latency : int;   (** DRAM write latency; writes are posted (4) *)
  mmio_write : int;      (** CPU MMIO register write, cycles (6) *)
  mmio_read : int;       (** CPU MMIO register read, cycles (12) *)
}

val default : t

val beats_for : t -> int -> int
(** Beats needed to move [n] bytes. *)
