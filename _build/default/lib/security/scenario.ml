(* Attack scenario infrastructure: a victim task holding a recognizable
   secret and an attacker task on another functional unit of the same
   system, per the threat model of §4 (general users running unverified
   accelerator code; attackers generating arbitrary addresses). *)

let secret_word = 0x5EC2E7_0BAD_CAFEL (* recognizable 63-bit pattern *)

let victim_kernel =
  {
    Kernel.Ir.name = "victim";
    bufs = [ Kernel.Ir.buf "secret" Kernel.Ir.I64 32 ];
    scratch = [];
    body = [];
  }

(* The attacker's task owns two objects so intra-task, inter-object attacks
   are expressible.  Buffer [a] is the declared working buffer all probes are
   issued through; [b] is the same task's second object. *)
let attacker_kernel body =
  {
    Kernel.Ir.name = "attacker";
    bufs = [ Kernel.Ir.buf "a" Kernel.Ir.I64 8; Kernel.Ir.buf "b" Kernel.Ir.I64 8 ];
    scratch = [];
    body;
  }

type env = {
  sys : Soc.System.t;
  driver : Driver.t;
  victim : Driver.handle;
  attacker : Driver.handle;
  attacker_kernel : Kernel.Ir.t;
}

let word_bytes = 8

let setup ?(attacker_body = []) (protection : Soc.Config.protection) =
  let config = Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection } in
  let sys = Soc.System.create ~instances:4 config in
  let driver = Option.get sys.Soc.System.driver in
  let kernel = attacker_kernel attacker_body in
  let victim =
    match Driver.allocate driver victim_kernel with
    | Ok a -> a.Driver.handle
    | Error msg -> failwith ("victim allocation failed: " ^ msg)
  in
  let attacker =
    match Driver.allocate driver kernel with
    | Ok a -> a.Driver.handle
    | Error msg -> failwith ("attacker allocation failed: " ^ msg)
  in
  (* Fill the victim's secret. *)
  let sb = Memops.Layout.find victim.Driver.layout "secret" in
  Memops.Layout.init_buffer sys.Soc.System.mem sb (fun _ ->
      Kernel.Value.VI (Int64.to_int secret_word));
  (* Zero-ish fill of the attacker's buffers. *)
  List.iter
    (fun name ->
      let binding = Memops.Layout.find attacker.Driver.layout name in
      Memops.Layout.init_buffer sys.Soc.System.mem binding (fun idx ->
          Kernel.Value.VI idx))
    [ "a"; "b" ];
  { sys; driver; victim; attacker; attacker_kernel = kernel }

(* Run the attacker's kernel as its accelerator task. *)
let run_attacker ?(params = []) env =
  let backend = Option.get env.sys.Soc.System.backend in
  Accel.Engine.run ~mem:env.sys.Soc.System.mem ~guard:(Soc.System.guard env.sys)
    ~bus:env.sys.Soc.System.bus ~directives:Hls.Directives.default
    ~addressing:(Driver.Backend.addressing backend)
    ~naive_tag_writes:(Soc.System.naive_tag_writes env.sys)
    {
      Accel.Engine.instance = env.attacker.Driver.task_id;
      kernel = env.attacker_kernel;
      layout = env.attacker.Driver.layout;
      params;
      obj_ids = env.attacker.Driver.obj_ids;
    }

let base_of handle name =
  (Memops.Layout.find handle.Driver.layout name).Memops.Layout.base

(* Element index (into attacker buffer [a]) that makes the generated address
   hit [target_addr], given plain physical addressing. *)
let index_for env ~target_addr =
  (target_addr - base_of env.attacker "a") / word_bytes

(* Index that, under Coarse addressing, flips the object-id bits from [a]'s
   id to [to_obj] while landing on [target_addr] — the address-arithmetic
   forging of §5.2.3. *)
let coarse_forge_index env ~to_obj ~target_addr =
  let a_base = base_of env.attacker "a" in
  let a_obj = List.assoc "a" env.attacker.Driver.obj_ids in
  let from_composed = Capchecker.Checker.compose_coarse ~obj:a_obj a_base in
  let to_composed = Capchecker.Checker.compose_coarse ~obj:to_obj target_addr in
  (to_composed - from_composed) / word_bytes

let read_attacker_word env idx =
  let binding = Memops.Layout.find env.attacker.Driver.layout "a" in
  Tagmem.Mem.read_u64 env.sys.Soc.System.mem
    ~addr:(Memops.Layout.elem_addr binding idx)

let victim_secret_intact env =
  let binding = Memops.Layout.find env.victim.Driver.layout "secret" in
  let rec all idx =
    idx >= binding.Memops.Layout.decl.Kernel.Ir.len
    || (Int64.equal
          (Tagmem.Mem.read_u64 env.sys.Soc.System.mem
             ~addr:(Memops.Layout.elem_addr binding idx))
          secret_word
       && all (idx + 1))
  in
  all 0
