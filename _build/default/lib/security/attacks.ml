type outcome =
  | Blocked of string
  | Leaked
  | Corrupted
  | Granted_in_task
  | Granted_page_slop
  | Forged
  | Neutralized

let outcome_to_string = function
  | Blocked reason -> "blocked (" ^ reason ^ ")"
  | Leaked -> "LEAKED"
  | Corrupted -> "CORRUPTED"
  | Granted_in_task -> "granted within task"
  | Granted_page_slop -> "granted page slop"
  | Forged -> "FORGED"
  | Neutralized -> "neutralized (tag cleared)"

let is_protected = function
  | Blocked _ | Neutralized -> true
  | Leaked | Corrupted | Granted_in_task | Granted_page_slop | Forged -> false

open Kernel.Ir

let read_probe_body = [ let_ "x" (ld "a" (p "idx")); store "a" (i 0) (v "x") ]
let write_probe_body = [ store "a" (p "idx") (i 0x41414141) ]

let blocked_of (denial : Guard.Iface.denial) = Blocked denial.Guard.Iface.code

(* Generic read probe at a raw physical target address. *)
let read_probe protection ~target ~granted_outcome =
  let env = Scenario.setup ~attacker_body:read_probe_body protection in
  let idx = Scenario.index_for env ~target_addr:(target env) in
  let outcome = Scenario.run_attacker ~params:[ ("idx", Kernel.Value.VI idx) ] env in
  match outcome.Accel.Engine.denied with
  | Some denial -> blocked_of denial
  | None -> granted_outcome env

let overread_cross_task protection =
  read_probe protection
    ~target:(fun env -> Scenario.base_of env.Scenario.victim "secret")
    ~granted_outcome:(fun env ->
      if Int64.equal (Scenario.read_attacker_word env 0) Scenario.secret_word then
        Leaked
      else Granted_in_task)

let overwrite_cross_task protection =
  let env = Scenario.setup ~attacker_body:write_probe_body protection in
  let target = Scenario.base_of env.Scenario.victim "secret" in
  let idx = Scenario.index_for env ~target_addr:target in
  let outcome = Scenario.run_attacker ~params:[ ("idx", Kernel.Value.VI idx) ] env in
  match outcome.Accel.Engine.denied with
  | Some denial -> blocked_of denial
  | None -> if Scenario.victim_secret_intact env then Granted_in_task else Corrupted

let overread_same_task_object protection =
  read_probe protection
    ~target:(fun env -> Scenario.base_of env.Scenario.attacker "b")
    ~granted_outcome:(fun _ -> Granted_in_task)

let overread_page_slop protection =
  read_probe protection
    ~target:(fun env ->
      (* Just past [a]'s 64-byte object but far from any other allocation
         granule: the last word of the page holding [a]. *)
      let a_base = Scenario.base_of env.Scenario.attacker "a" in
      (a_base / 4096 * 4096) + 4096 - 8)
    ~granted_outcome:(fun _ -> Granted_page_slop)

let fixed_address_os protection =
  read_probe protection
    ~target:(fun _ -> 0x8000 (* OS image, far below the driver heap *))
    ~granted_outcome:(fun _ -> Leaked)

let use_after_free protection =
  let env = Scenario.setup ~attacker_body:read_probe_body protection in
  (* The driver tears the attacker's task down; the functional unit keeps
     DMAing through its stale pointer register. *)
  let _report = Driver.deallocate env.Scenario.driver env.Scenario.attacker ~denied:None in
  let outcome = Scenario.run_attacker ~params:[ ("idx", Kernel.Value.VI 0) ] env in
  match outcome.Accel.Engine.denied with
  | Some denial -> blocked_of denial
  | None -> Granted_in_task

let uninitialized_pointer protection =
  read_probe protection
    ~target:(fun _ -> 16 (* the null page: a never-programmed pointer register *))
    ~granted_outcome:(fun _ -> Leaked)

let untrusted_pointer_deref protection =
  (* The classic gadget: the accelerator indexes a buffer with a value it
     loaded from its own input data, which the attacker fully controls. *)
  let body =
    [ let_ "evil" (ld "a" (i 1)); let_ "x" (ld "a" (v "evil")); store "a" (i 0) (v "x") ]
  in
  let env = Scenario.setup ~attacker_body:body protection in
  let target = Scenario.base_of env.Scenario.victim "secret" in
  let idx = Scenario.index_for env ~target_addr:target in
  (* Plant the evil index in the attacker's own input. *)
  let a = Memops.Layout.find env.Scenario.attacker.Driver.layout "a" in
  Tagmem.Mem.write_u64 env.Scenario.sys.Soc.System.mem
    ~addr:(Memops.Layout.elem_addr a 1) (Int64.of_int idx);
  let outcome = Scenario.run_attacker env in
  match outcome.Accel.Engine.denied with
  | Some denial -> blocked_of denial
  | None ->
      if Int64.equal (Scenario.read_attacker_word env 0) Scenario.secret_word then
        Leaked
      else Granted_in_task

let forge_capability protection =
  let env = Scenario.setup ~attacker_body:write_probe_body protection in
  let mem = env.Scenario.sys.Soc.System.mem in
  (* A CPU task keeps a (tagged) capability to the victim's secret in memory
     just past the attacker's buffer — e.g. the CPU task's spilled register
     state sharing the heap. *)
  let a_base = Scenario.base_of env.Scenario.attacker "a" in
  let cap_addr = (a_base + 64 + 15) / 16 * 16 in
  let victim_cap =
    match
      Cheri.Cap.set_bounds Cheri.Cap.root
        ~base:(Scenario.base_of env.Scenario.victim "secret") ~length:256
    with
    | Ok c -> c
    | Error e -> failwith (Cheri.Cap.error_to_string e)
  in
  Tagmem.Mem.store_cap mem ~addr:cap_addr victim_cap;
  let before = Tagmem.Mem.load_cap mem ~addr:cap_addr in
  assert before.Cheri.Cap.tag;
  (* The attacker overwrites the capability's first word (its address /
     bounds material) through DMA. *)
  let idx = Scenario.index_for env ~target_addr:cap_addr in
  let outcome = Scenario.run_attacker ~params:[ ("idx", Kernel.Value.VI idx) ] env in
  match outcome.Accel.Engine.denied with
  | Some denial -> blocked_of denial
  | None ->
      let after = Tagmem.Mem.load_cap mem ~addr:cap_addr in
      if after.Cheri.Cap.tag && not (Cheri.Cap.equal after before) then Forged
      else if not after.Cheri.Cap.tag then Neutralized
      else Granted_in_task

let coarse_object_id_forge () =
  let run ~to_obj ~target env =
    let idx = Scenario.coarse_forge_index env ~to_obj ~target_addr:target in
    let outcome = Scenario.run_attacker ~params:[ ("idx", Kernel.Value.VI idx) ] env in
    match outcome.Accel.Engine.denied with
    | Some denial -> blocked_of denial
    | None ->
        if Int64.equal (Scenario.read_attacker_word env 0) Scenario.secret_word then
          Leaked
        else Granted_in_task
  in
  let env1 = Scenario.setup ~attacker_body:read_probe_body Soc.Config.Prot_cc_coarse in
  let own_other =
    run
      ~to_obj:(List.assoc "b" env1.Scenario.attacker.Driver.obj_ids)
      ~target:(Scenario.base_of env1.Scenario.attacker "b")
      env1
  in
  let env2 = Scenario.setup ~attacker_body:read_probe_body Soc.Config.Prot_cc_coarse in
  let cross_task =
    run ~to_obj:0 ~target:(Scenario.base_of env2.Scenario.victim "secret") env2
  in
  (own_other, cross_task)
