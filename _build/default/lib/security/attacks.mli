(** The attack library: each attack is a concrete malicious accelerator task
    executed against a victim on a shared system, parameterized by the
    protection scheme (the columns of Table 3).

    Outcomes are observable facts — "the secret appeared in the attacker's
    buffer", "the victim's memory changed", "a still-tagged capability now
    has different bounds" — not the guard's self-reported intentions. *)

type outcome =
  | Blocked of string     (** the protection hardware denied the access *)
  | Leaked                (** the victim's secret reached the attacker *)
  | Corrupted             (** victim (or OS) memory was modified *)
  | Granted_in_task       (** granted, but the target was the attacker's own
                              task's other object — the task-granularity
                              escape of Coarse/sNPU/IOPMP *)
  | Granted_page_slop     (** granted out-of-object access inside the
                              attacker's own mapped page (IOMMU slop) *)
  | Forged                (** a valid capability was rewritten while its tag
                              survived — the Figure 2 disaster *)
  | Neutralized           (** the write landed but the tag was cleared: the
                              capability bits changed yet cannot be used *)

val outcome_to_string : outcome -> string

val is_protected : outcome -> bool
(** Blocked or Neutralized. *)

(** {1 Individual attacks} — each builds a fresh system. *)

val overread_cross_task : Soc.Config.protection -> outcome
(** Buffer over-read reaching another task's secret (CWE 125/126 family). *)

val overwrite_cross_task : Soc.Config.protection -> outcome
(** Buffer overflow write into another task's buffer (CWE 787/120...). *)

val overread_same_task_object : Soc.Config.protection -> outcome
(** Over-read into the {e same} task's other object — distinguishes object-
    from task-granularity schemes. *)

val overread_page_slop : Soc.Config.protection -> outcome
(** Out-of-object read inside the attacker's own page (IOMMU's intra-page
    blind spot). *)

val fixed_address_os : Soc.Config.protection -> outcome
(** Dereference of a fixed absolute address in OS-reserved memory
    (CWE 587). *)

val use_after_free : Soc.Config.protection -> outcome
(** DMA after the driver deallocated the task (CWE 416/825 as seen from the
    device side). *)

val uninitialized_pointer : Soc.Config.protection -> outcome
(** DMA through a pointer register the driver never programmed (CWE 824). *)

val untrusted_pointer_deref : Soc.Config.protection -> outcome
(** The accelerator dereferences an index read from attacker-controlled
    input data (CWE 822/823) aimed at the victim. *)

val forge_capability : Soc.Config.protection -> outcome
(** DMA-write over a valid in-memory capability, attempting to widen its
    bounds while keeping the tag (the §2 motivating attack). *)

val coarse_object_id_forge : unit -> outcome * outcome
(** Address-arithmetic forging of the Coarse object id (§5.2.3): returns the
    outcome against the attacker's own other object (expected granted — task
    granularity) and against the victim's object (expected blocked — the
    source id on the interconnect is not forgeable). *)
