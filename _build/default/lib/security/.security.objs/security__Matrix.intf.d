lib/security/matrix.mli: Soc
