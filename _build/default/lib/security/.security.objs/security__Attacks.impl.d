lib/security/attacks.ml: Accel Cheri Driver Guard Int64 Kernel List Memops Scenario Soc Tagmem
