lib/security/scenario.ml: Accel Capchecker Cpu Driver Hls Int64 Kernel List Memops Option Soc Tagmem
