lib/security/matrix.ml: Attacks Ccsim List Soc
