lib/security/attacks.mli: Soc
