(** The instruction set of the simulated CPU core: the RV64 subset the kernel
    code generator emits, the D-extension floating point it needs, and the
    CHERI capability instructions of the purecap target.

    Conventions:
    - [x0] is hardwired zero; integer registers are [x0]..[x31].
    - Floating-point registers [f0]..[f31] hold doubles; [Flw]/[Fsw] widen and
      narrow at the memory boundary (the simulator's FPU computes in double
      precision, matching the kernel IR's semantics).
    - Capability registers [c0]..[c31] exist in purecap mode; [Cincoffset] /
      [Csetbounds] / [Candperm] derive, and the capability memory
      instructions ([Clx]/[Csx]) dereference with full CHERI checks.
    - Arithmetic follows the host's 63-bit boxed-integer semantics, exactly
      like the kernel IR interpreter — the two engines must agree
      bit-for-bit, which the test suite asserts. *)

(** Register indices: [reg] is x0..x31, [freg] f0..f31, [creg] c0..c31. *)
type reg = int

type freg = int
type creg = int

type width = B | W | D
(** Memory access widths: byte, 32-bit word, 64-bit double word. *)

type fwidth = FW | FD
(** f32 (widen/narrow at memory) and f64. *)

type t =
  (* integer register-register *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg
  | Sra of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  (* integer register-immediate *)
  | Addi of reg * reg * int
  | Li of reg * int          (** pseudo: load (possibly wide) immediate *)
  (* control flow; targets are resolved instruction indices *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Jal of int
  (* integer memory, RV64 addressing (integer base register) *)
  | Lx of width * reg * reg * int     (** rd, base, offset; Lb zero-extends *)
  | Sx of width * reg * reg * int     (** rs, base, offset *)
  (* floating point *)
  | Fadd of freg * freg * freg
  | Fsub of freg * freg * freg
  | Fmul of freg * freg * freg
  | Fdiv of freg * freg * freg
  | Fsqrt of freg * freg
  | Fexp of freg * freg
      (** pseudo: the libm exp() call the compiler emits, folded to one
          long-latency instruction *)
  | Fmin of freg * freg * freg
  | Fmax of freg * freg * freg
  | Fneg of freg * freg
  | Fabs of freg * freg
  | Fmv of freg * freg
  | Feq of reg * freg * freg
  | Flt_ of reg * freg * freg
  | Fle of reg * freg * freg
  | Fcvt_d_l of freg * reg   (** int -> double *)
  | Fcvt_l_d of reg * freg   (** double -> int, truncating *)
  | Fli of freg * float      (** pseudo: load float constant *)
  | Flx of fwidth * freg * reg * int  (** FP load, integer base *)
  | Fsx of fwidth * freg * reg * int
  (* CHERI: derivation *)
  | Cmove of creg * creg
  | Csetbounds of creg * creg * reg   (** cd = cs with [addr, addr+len(rs)) *)
  | Candperm of creg * creg * reg
  | Cincoffset of creg * creg * reg   (** cd = cs with addr += rs *)
  | Cincoffsetimm of creg * creg * int
  (* CHERI: memory through a capability *)
  | Clx of width * reg * creg * int
  | Csx of width * reg * creg * int
  | Cflx of fwidth * freg * creg * int
  | Cfsx of fwidth * freg * creg * int
  (* end of kernel *)
  | Halt

val to_string : t -> string

type cost_class =
  | C_alu
  | C_mul
  | C_div
  | C_branch
  | C_mem
  | C_fadd
  | C_fmul
  | C_fdiv
  | C_fspec
  | C_cheri

val cost_class : t -> cost_class
(** Used by the timing model; memory instructions additionally pay the cache
    access. *)
