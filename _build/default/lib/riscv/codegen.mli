(** The kernel compiler: Kernel IR to RV64 / CHERI-RV64 purecap code.

    This is the counterpart of compiling MachSuite's C for the prototype's
    CPU.  The generated program computes {e exactly} what the reference
    interpreter computes (asserted benchmark-by-benchmark in the tests); in
    [Purecap_target] every memory access goes through a bounded capability
    register, so the compiled kernel inherits CHERI's spatial safety — an
    out-of-bounds index traps in the core instead of corrupting memory.

    Register conventions (fixed ABI of the generated code):
    - [x1]..[x8]: expression temporaries ([x1] doubles as the macro-op
      scratch register); [x9]..[x31]: locals and loop bounds.
    - [f1]..[f8]: FP temporaries; [f9]..[f31]: FP locals.
    - Purecap: [c2] address scratch, [c9] the scratch-arena capability,
      [c10+i] the capability of the kernel's i-th heap buffer.

    Kernels whose locals or expression depth exceed the register file are
    rejected with {!Codegen_error} — every MachSuite kernel fits (a test
    asserts this), which is also why the generator needs no spilling. *)

type target = Rv64_target | Purecap_target

exception Codegen_error of string

type program = {
  insns : Insn.t array;
  scratch_bytes : int;
      (** bytes of scratch arena the program expects (8 bytes per scratch
          element — on-chip arrays hold full-width values) *)
  scratch_offsets : (string * int) list;  (** arena byte offset per scratch *)
  buffer_cregs : (string * int) list;
      (** purecap: which capability register carries each heap buffer *)
}

val scratch_creg : int
(** 9 — the arena capability register. *)

val compile :
  target:target ->
  layout:Memops.Layout.t ->
  scratch_base:int ->
  params:(string * Kernel.Value.t) list ->
  Kernel.Ir.t ->
  program
(** [layout] gives heap buffer placement ([Rv64_target] bakes the addresses
    in as immediates; [Purecap_target] only uses it for element widths —
    addresses come from the capability registers at run time).
    [scratch_base] is the arena's address for [Rv64_target] (pass the
    capability's base for purecap; offsets are relative either way). *)

val disassemble : program -> string
