lib/riscv/insn.mli:
