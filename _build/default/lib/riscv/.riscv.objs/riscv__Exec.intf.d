lib/riscv/exec.mli: Codegen Kernel Machine Memops Tagmem
