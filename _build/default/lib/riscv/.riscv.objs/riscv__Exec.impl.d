lib/riscv/exec.ml: Cheri Codegen Kernel List Machine Memops Tagmem
