lib/riscv/machine.mli: Cheri Cpu Insn Tagmem
