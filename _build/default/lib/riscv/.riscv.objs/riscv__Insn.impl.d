lib/riscv/insn.ml: Printf
