lib/riscv/codegen.mli: Insn Kernel Memops
