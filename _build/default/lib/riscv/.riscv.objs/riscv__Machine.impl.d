lib/riscv/machine.ml: Array Cheri Cpu Float Insn Int64 Printf Tagmem
