lib/riscv/codegen.ml: Array Hashtbl Insn Kernel List Memops Printf String
