type run = {
  machine : Machine.result;
  program : Codegen.program;
}

let derive_buffer_cap (binding : Memops.Layout.binding) =
  let decl = binding.Memops.Layout.decl in
  let bytes = Kernel.Ir.buf_decl_bytes decl in
  let _, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
  let perms =
    if decl.Kernel.Ir.writable then Cheri.Perms.data_rw else Cheri.Perms.data_ro
  in
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base:binding.Memops.Layout.base ~length:padded with
  | Error e -> failwith (Cheri.Cap.error_to_string e)
  | Ok cap -> (
      match Cheri.Cap.with_perms cap perms with
      | Ok cap -> cap
      | Error e -> failwith (Cheri.Cap.error_to_string e))

let run_kernel ~target ~mem ~heap ~layout ?(params = []) ?fuel kernel =
  (* Scratch arena: allocated for the run, like a stack frame. *)
  let probe =
    Codegen.compile ~target ~layout ~scratch_base:0 ~params kernel
  in
  let scratch_base =
    if probe.Codegen.scratch_bytes = 0 then 0
    else Tagmem.Alloc.malloc heap ~align:16 probe.Codegen.scratch_bytes
  in
  let program =
    if probe.Codegen.scratch_bytes = 0 then probe
    else Codegen.compile ~target ~layout ~scratch_base ~params kernel
  in
  let mode =
    match target with
    | Codegen.Rv64_target -> Machine.Rv64
    | Codegen.Purecap_target -> Machine.Purecap
  in
  let machine = Machine.create mode mem in
  (match target with
  | Codegen.Rv64_target -> ()
  | Codegen.Purecap_target ->
      List.iter
        (fun (name, creg) ->
          Machine.set_creg machine creg
            (derive_buffer_cap (Memops.Layout.find layout name)))
        program.Codegen.buffer_cregs;
      if program.Codegen.scratch_bytes > 0 then
        Machine.set_creg machine Codegen.scratch_creg
          (match
             Cheri.Cap.set_bounds Cheri.Cap.root ~base:scratch_base
               ~length:program.Codegen.scratch_bytes
           with
          | Ok c -> c
          | Error e -> failwith (Cheri.Cap.error_to_string e)));
  let result = Machine.run ?fuel machine program.Codegen.insns in
  if program.Codegen.scratch_bytes > 0 then Tagmem.Alloc.free heap scratch_base;
  { machine = result; program }
