(** The instruction-level CPU core: an RV64 + D + CHERI simulator — the
    Flute-class softcore of the prototype, at architectural fidelity.

    The core executes programs over tagged memory with the same data cache
    and per-operation costs as the abstract model in [lib/cpu], so the two
    agree on timing to first order; functionally they must agree exactly,
    which the test suite checks kernel-by-kernel against the reference
    interpreter.

    Two execution modes:
    - [Rv64]: integer addressing, no checks beyond the physical memory range
      (an out-of-range access is a bus-error trap);
    - [Purecap]: memory is reachable only through capability registers; every
      [Clx]/[Csx]/[Cflx]/[Cfsx] dereference is checked and a violation traps
      with the capability error. *)

type mode = Rv64 | Purecap

type trap = { pc : int; reason : string }

type result = {
  instructions : int;
  cycles : int;
  trap : trap option;
  cache_hits : int;
  cache_misses : int;
}

type costs = {
  alu : int;
  mul : int;
  div : int;
  branch : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  fspec : int;
  cheri : int;
}

val default_costs : costs
(** Matches [Cpu.Model.default_costs] so the ISA core and the abstract model
    are calibrated identically. *)

type t

val create :
  ?costs:costs -> ?cache:Cpu.Cache.config -> mode -> Tagmem.Mem.t -> t

val set_xreg : t -> int -> int -> unit
(** [x0] stays zero regardless. *)

val xreg : t -> int -> int
val set_freg : t -> int -> float -> unit
val freg : t -> int -> float

val set_creg : t -> int -> Cheri.Cap.t -> unit
(** Only meaningful in [Purecap] mode; the runner installs the kernel's
    buffer capabilities here before starting. *)

val creg : t -> int -> Cheri.Cap.t

val run : ?fuel:int -> t -> Insn.t array -> result
(** Execute from instruction 0 until [Halt], a trap, or [fuel] instructions
    (default 200 million; exceeding it is reported as a trap). *)
