type mode = Rv64 | Purecap

type trap = { pc : int; reason : string }

type result = {
  instructions : int;
  cycles : int;
  trap : trap option;
  cache_hits : int;
  cache_misses : int;
}

type costs = {
  alu : int;
  mul : int;
  div : int;
  branch : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  fspec : int;
  cheri : int;
}

let default_costs =
  { alu = 1; mul = 3; div = 12; branch = 1; fadd = 3; fmul = 4; fdiv = 18;
    fspec = 24; cheri = 1 }

type t = {
  mode : mode;
  mem : Tagmem.Mem.t;
  costs : costs;
  cache : Cpu.Cache.t;
  xregs : int array;
  fregs : float array;
  cregs : Cheri.Cap.t array;
}

exception Trapped of string

let create ?(costs = default_costs) ?(cache = Cpu.Cache.default_config) mode mem =
  {
    mode; mem; costs;
    cache = Cpu.Cache.create cache;
    xregs = Array.make 32 0;
    fregs = Array.make 32 0.0;
    cregs = Array.make 32 Cheri.Cap.null;
  }

let check_reg r = if r < 0 || r > 31 then invalid_arg "Machine: bad register"

let set_xreg t r v =
  check_reg r;
  if r <> 0 then t.xregs.(r) <- v

let xreg t r =
  check_reg r;
  if r = 0 then 0 else t.xregs.(r)

let set_freg t r v =
  check_reg r;
  t.fregs.(r) <- v

let freg t r =
  check_reg r;
  t.fregs.(r)

let set_creg t r c =
  check_reg r;
  t.cregs.(r) <- c

let creg t r =
  check_reg r;
  t.cregs.(r)

let require_purecap t =
  match t.mode with
  | Purecap -> ()
  | Rv64 -> raise (Trapped "capability instruction in RV64 mode")

let width_bytes : Insn.width -> int = function B -> 1 | W -> 4 | D -> 8
let fwidth_bytes : Insn.fwidth -> int = function FW -> 4 | FD -> 8

(* Integer memory primitives shared by the plain and capability paths. *)
let load_int t (w : Insn.width) addr =
  match w with
  | Insn.B -> Tagmem.Mem.read_u8 t.mem ~addr
  | Insn.W ->
      let v = Tagmem.Mem.read_u32 t.mem ~addr in
      if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v
  | Insn.D -> Int64.to_int (Tagmem.Mem.read_u64 t.mem ~addr)

let store_int t (w : Insn.width) addr v =
  match w with
  | Insn.B -> Tagmem.Mem.write_u8 t.mem ~addr v
  | Insn.W -> Tagmem.Mem.write_u32 t.mem ~addr (v land 0xffff_ffff)
  | Insn.D -> Tagmem.Mem.write_u64 t.mem ~addr (Int64.of_int v)

let load_float t (w : Insn.fwidth) addr =
  match w with
  | Insn.FW -> Tagmem.Mem.read_f32 t.mem ~addr
  | Insn.FD -> Tagmem.Mem.read_f64 t.mem ~addr

let store_float t (w : Insn.fwidth) addr v =
  match w with
  | Insn.FW -> Tagmem.Mem.write_f32 t.mem ~addr v
  | Insn.FD -> Tagmem.Mem.write_f64 t.mem ~addr v

let cap_effective t cs off size kind =
  require_purecap t;
  let cap = t.cregs.(cs) in
  let addr = cap.Cheri.Cap.addr + off in
  match Cheri.Cap.access_ok cap ~addr ~size kind with
  | Ok () -> addr
  | Error e -> raise (Trapped ("CHERI " ^ Cheri.Cap.error_to_string e))

let bool_int b = if b then 1 else 0

let run ?(fuel = 200_000_000) t program =
  let n = Array.length program in
  let pc = ref 0 in
  let instructions = ref 0 in
  let cycles = ref 0 in
  let trap = ref None in
  let charge (insn : Insn.t) =
    let c =
      match Insn.cost_class insn with
      | Insn.C_alu -> t.costs.alu
      | Insn.C_mul -> t.costs.mul
      | Insn.C_div -> t.costs.div
      | Insn.C_branch -> t.costs.branch
      | Insn.C_fadd -> t.costs.fadd
      | Insn.C_fmul -> t.costs.fmul
      | Insn.C_fdiv -> t.costs.fdiv
      | Insn.C_fspec -> t.costs.fspec
      | Insn.C_cheri -> t.costs.cheri
      | Insn.C_mem -> 0 (* the cache access is charged at execution *)
    in
    cycles := !cycles + c
  in
  let mem_cycles addr = cycles := !cycles + Cpu.Cache.access t.cache ~addr in
  let x = xreg t and setx = set_xreg t in
  let f = freg t and setf = set_freg t in
  let div_checked a b = if b = 0 then raise (Trapped "division by zero") else a / b in
  let rem_checked a b = if b = 0 then raise (Trapped "division by zero") else a mod b in
  let branch_target tgt =
    if tgt < 0 || tgt > n then raise (Trapped "branch outside program") else tgt
  in
  (try
     while !pc < n do
       if !instructions >= fuel then raise (Trapped "out of fuel");
       let insn = program.(!pc) in
       incr instructions;
       charge insn;
       let next = ref (!pc + 1) in
       (match insn with
       | Insn.Add (d, a, b) -> setx d (x a + x b)
       | Insn.Sub (d, a, b) -> setx d (x a - x b)
       | Insn.Mul (d, a, b) -> setx d (x a * x b)
       | Insn.Div (d, a, b) -> setx d (div_checked (x a) (x b))
       | Insn.Rem (d, a, b) -> setx d (rem_checked (x a) (x b))
       | Insn.And (d, a, b) -> setx d (x a land x b)
       | Insn.Or (d, a, b) -> setx d (x a lor x b)
       | Insn.Xor (d, a, b) -> setx d (x a lxor x b)
       | Insn.Sll (d, a, b) -> setx d (x a lsl x b)
       | Insn.Sra (d, a, b) -> setx d (x a asr x b)
       | Insn.Slt (d, a, b) -> setx d (bool_int (x a < x b))
       | Insn.Sltu (d, a, b) ->
           (* Unsigned compare on the 63-bit host representation; used by the
              code generator only for zero tests, where it is exact. *)
           let ua = x a land max_int and ub = x b land max_int in
           setx d (bool_int (ua < ub))
       | Insn.Addi (d, a, imm) -> setx d (x a + imm)
       | Insn.Li (d, imm) -> setx d imm
       | Insn.Beq (a, b, tgt) -> if x a = x b then next := branch_target tgt
       | Insn.Bne (a, b, tgt) -> if x a <> x b then next := branch_target tgt
       | Insn.Blt (a, b, tgt) -> if x a < x b then next := branch_target tgt
       | Insn.Bge (a, b, tgt) -> if x a >= x b then next := branch_target tgt
       | Insn.Jal tgt -> next := branch_target tgt
       | Insn.Lx (w, d, base, off) ->
           let addr = x base + off in
           mem_cycles addr;
           setx d (load_int t w addr)
       | Insn.Sx (w, s, base, off) ->
           let addr = x base + off in
           mem_cycles addr;
           store_int t w addr (x s)
       | Insn.Fadd (d, a, b) -> setf d (f a +. f b)
       | Insn.Fsub (d, a, b) -> setf d (f a -. f b)
       | Insn.Fmul (d, a, b) -> setf d (f a *. f b)
       | Insn.Fdiv (d, a, b) -> setf d (f a /. f b)
       | Insn.Fsqrt (d, a) -> setf d (sqrt (f a))
       | Insn.Fexp (d, a) -> setf d (exp (f a))
       | Insn.Fmin (d, a, b) -> setf d (Float.min (f a) (f b))
       | Insn.Fmax (d, a, b) -> setf d (Float.max (f a) (f b))
       | Insn.Fneg (d, a) -> setf d (-.f a)
       | Insn.Fabs (d, a) -> setf d (Float.abs (f a))
       | Insn.Fmv (d, a) -> setf d (f a)
       | Insn.Feq (d, a, b) -> setx d (bool_int (f a = f b))
       | Insn.Flt_ (d, a, b) -> setx d (bool_int (f a < f b))
       | Insn.Fle (d, a, b) -> setx d (bool_int (f a <= f b))
       | Insn.Fcvt_d_l (d, a) -> setf d (float_of_int (x a))
       | Insn.Fcvt_l_d (d, a) -> setx d (int_of_float (f a))
       | Insn.Fli (d, v) -> setf d v
       | Insn.Flx (w, d, base, off) ->
           let addr = x base + off in
           mem_cycles addr;
           setf d (load_float t w addr)
       | Insn.Fsx (w, s, base, off) ->
           let addr = x base + off in
           mem_cycles addr;
           store_float t w addr (f s)
       | Insn.Cmove (d, a) ->
           require_purecap t;
           t.cregs.(d) <- t.cregs.(a)
       | Insn.Csetbounds (d, a, r) -> (
           require_purecap t;
           let cap = t.cregs.(a) in
           match
             Cheri.Cap.set_bounds cap ~base:cap.Cheri.Cap.addr ~length:(x r)
           with
           | Ok c -> t.cregs.(d) <- c
           | Error e -> raise (Trapped ("CHERI " ^ Cheri.Cap.error_to_string e)))
       | Insn.Candperm (d, a, r) -> (
           require_purecap t;
           match Cheri.Cap.with_perms t.cregs.(a) (Cheri.Perms.of_mask (x r)) with
           | Ok c -> t.cregs.(d) <- c
           | Error e -> raise (Trapped ("CHERI " ^ Cheri.Cap.error_to_string e)))
       | Insn.Cincoffset (d, a, r) ->
           require_purecap t;
           let cap = t.cregs.(a) in
           t.cregs.(d) <- Cheri.Cap.set_address cap (cap.Cheri.Cap.addr + x r)
       | Insn.Cincoffsetimm (d, a, imm) ->
           require_purecap t;
           let cap = t.cregs.(a) in
           t.cregs.(d) <- Cheri.Cap.set_address cap (cap.Cheri.Cap.addr + imm)
       | Insn.Clx (w, d, cs, off) ->
           let addr = cap_effective t cs off (width_bytes w) Cheri.Cap.Read in
           mem_cycles addr;
           setx d (load_int t w addr)
       | Insn.Csx (w, s, cs, off) ->
           let addr = cap_effective t cs off (width_bytes w) Cheri.Cap.Write in
           mem_cycles addr;
           store_int t w addr (x s)
       | Insn.Cflx (w, d, cs, off) ->
           let addr = cap_effective t cs off (fwidth_bytes w) Cheri.Cap.Read in
           mem_cycles addr;
           setf d (load_float t w addr)
       | Insn.Cfsx (w, s, cs, off) ->
           let addr = cap_effective t cs off (fwidth_bytes w) Cheri.Cap.Write in
           mem_cycles addr;
           store_float t w addr (f s)
       | Insn.Halt -> next := n);
       pc := !next
     done
   with
  | Trapped reason -> trap := Some { pc = !pc; reason }
  | Tagmem.Mem.Out_of_range { addr; size } ->
      trap :=
        Some { pc = !pc; reason = Printf.sprintf "bus error at 0x%x+%d" addr size });
  {
    instructions = !instructions;
    cycles = !cycles;
    trap = !trap;
    cache_hits = Cpu.Cache.hits t.cache;
    cache_misses = Cpu.Cache.misses t.cache;
  }
