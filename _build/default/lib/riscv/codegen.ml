type target = Rv64_target | Purecap_target

exception Codegen_error of string

type program = {
  insns : Insn.t array;
  scratch_bytes : int;
  scratch_offsets : (string * int) list;
  buffer_cregs : (string * int) list;
}

let scratch_creg = 9
let addr_creg = 2
let first_buffer_creg = 10

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Assembler with label back-patching                                   *)
(* ------------------------------------------------------------------ *)

module Asm = struct
  type t = {
    mutable code : Insn.t array;
    mutable len : int;
    mutable labels : int array;   (* label id -> instruction index, -1 pending *)
    mutable n_labels : int;
    mutable fixups : (int * int) list;  (* (instruction index, label id) *)
  }

  let create () =
    { code = Array.make 256 Insn.Halt; len = 0; labels = Array.make 64 (-1);
      n_labels = 0; fixups = [] }

  let emit a insn =
    if a.len = Array.length a.code then begin
      let bigger = Array.make (2 * a.len) Insn.Halt in
      Array.blit a.code 0 bigger 0 a.len;
      a.code <- bigger
    end;
    a.code.(a.len) <- insn;
    a.len <- a.len + 1

  let new_label a =
    if a.n_labels = Array.length a.labels then begin
      let bigger = Array.make (2 * a.n_labels) (-1) in
      Array.blit a.labels 0 bigger 0 a.n_labels;
      a.labels <- bigger
    end;
    let id = a.n_labels in
    a.n_labels <- id + 1;
    id

  let place a id = a.labels.(id) <- a.len

  (* Branch to a label: emitted with the label id as target, recorded for
     patching. *)
  let branch a mk id =
    a.fixups <- (a.len, id) :: a.fixups;
    emit a (mk id)

  let finalize a =
    List.iter
      (fun (pos, id) ->
        let target = a.labels.(id) in
        if target < 0 then fail "unplaced label %d" id;
        a.code.(pos) <-
          (match a.code.(pos) with
          | Insn.Beq (x, y, _) -> Insn.Beq (x, y, target)
          | Insn.Bne (x, y, _) -> Insn.Bne (x, y, target)
          | Insn.Blt (x, y, _) -> Insn.Blt (x, y, target)
          | Insn.Bge (x, y, _) -> Insn.Bge (x, y, target)
          | Insn.Jal _ -> Insn.Jal target
          | other ->
              fail "fixup on non-branch %s" (Insn.to_string other)))
      a.fixups;
    Array.sub a.code 0 a.len
end

(* ------------------------------------------------------------------ *)
(* Register pools                                                       *)
(* ------------------------------------------------------------------ *)

type pool = { mutable free : int list; what : string }

let make_pool what lo hi = { free = List.init (hi - lo + 1) (fun k -> lo + k); what }

let take pool =
  match pool.free with
  | r :: rest ->
      pool.free <- rest;
      r
  | [] -> fail "out of %s registers (kernel too complex for the fixed ABI)" pool.what

let give pool r = pool.free <- r :: pool.free

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

type ty = TI | TF

let ty_of_elem elem = if Kernel.Ir.elem_is_float elem then TF else TI

let ty_of_binop (op : Kernel.Ir.binop) ~operand =
  match op with
  | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr | Imin | Imax ->
      (TI, TI)
  | Lt | Le | Gt | Ge | Eq | Ne -> (operand, TI)
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> (TF, TF)
  | Flt | Fle | Fgt | Fge -> (TF, TI)

(* ------------------------------------------------------------------ *)
(* The compiler                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  target : target;
  asm : Asm.t;
  layout : Memops.Layout.t;
  kernel : Kernel.Ir.t;
  params : (string * Kernel.Value.t) list;
  scratch_base : int;
  scratch_offsets : (string, int) Hashtbl.t;
  locals : (string, ty * int) Hashtbl.t;
  itemps : pool;
  ftemps : pool;
  ilocals : pool;
  flocals : pool;
  buffer_creg : (string, int) Hashtbl.t;
}

let is_scratch env name = Hashtbl.mem env.scratch_offsets name

let scratch_decl env name =
  List.find (fun (d : Kernel.Ir.buf_decl) -> d.buf_name = name) env.kernel.scratch

let buf_decl env name =
  if is_scratch env name then scratch_decl env name
  else (Memops.Layout.find env.layout name).Memops.Layout.decl

(* Static type of an expression; locals must already be bound. *)
let rec infer env (e : Kernel.Ir.exp) =
  match e with
  | Int _ -> TI
  | Flt _ -> TF
  | Var name -> (
      match Hashtbl.find_opt env.locals name with
      | Some (ty, _) -> ty
      | None -> fail "unbound local %s" name)
  | Param name -> (
      match List.assoc_opt name env.params with
      | Some (Kernel.Value.VI _) -> TI
      | Some (Kernel.Value.VF _) -> TF
      | None -> fail "unknown param %s" name)
  | Load (b, _) -> ty_of_elem (buf_decl env b).elem
  | Bin (op, a, _) ->
      let operand = infer env a in
      snd (ty_of_binop op ~operand)
  | Un (op, _) -> (
      match op with
      | Neg | Bnot | F2i -> TI
      | Fneg | Fabs | Fsqrt | Fexp | I2f -> TF)

(* Heap element width/type as seen by memory instructions. *)
let heap_access env name =
  let decl = (Memops.Layout.find env.layout name).Memops.Layout.decl in
  match decl.Kernel.Ir.elem with
  | Kernel.Ir.U8 -> `Int (Insn.B, 1)
  | Kernel.Ir.I32 -> `Int (Insn.W, 4)
  | Kernel.Ir.I64 -> `Int (Insn.D, 8)
  | Kernel.Ir.F32 -> `Float (Insn.FW, 4)
  | Kernel.Ir.F64 -> `Float (Insn.FD, 8)

let scratch_access env name =
  let decl = scratch_decl env name in
  if Kernel.Ir.elem_is_float decl.Kernel.Ir.elem then `Float (Insn.FD, 8)
  else `Int (Insn.D, 8)

(* Multiply an index register by a (power-of-two or general) width into a
   fresh temp; consumes nothing. *)
let scale_index env ~idx ~width =
  let a = env.asm in
  let d = take env.itemps in
  (match width with
  | 1 -> Asm.emit a (Insn.Add (d, 0, idx))
  | 2 | 4 | 8 | 16 ->
      let sh =
        match width with 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> 4
      in
      Asm.emit a (Insn.Li (1, sh));
      Asm.emit a (Insn.Sll (d, idx, 1))
  | w ->
      Asm.emit a (Insn.Li (1, w));
      Asm.emit a (Insn.Mul (d, idx, 1)));
  d

(* Produce, in x-register form, the byte offset of element [idx_reg] of
   buffer/scratch [name]; returns (offset_reg, access descriptor,
   base source). *)
type base_src =
  | Base_const of int      (* rv64: absolute base address *)
  | Base_creg of int       (* purecap: capability register *)

let address_of env name ~idx_reg =
  let access, width, base =
    if is_scratch env name then begin
      let access = scratch_access env name in
      let arena_off = Hashtbl.find env.scratch_offsets name in
      (* In purecap the arena capability's cursor sits at the arena base, so
         the element offset carries the per-scratch arena offset. *)
      let base =
        match env.target with
        | Rv64_target -> (Base_const (env.scratch_base + arena_off), 0)
        | Purecap_target -> (Base_creg scratch_creg, arena_off)
      in
      (access, 8, base)
    end
    else begin
      let access = heap_access env name in
      let width = match access with `Int (_, w) | `Float (_, w) -> w in
      let base =
        match env.target with
        | Rv64_target ->
            Base_const (Memops.Layout.find env.layout name).Memops.Layout.base
        | Purecap_target -> Base_creg (Hashtbl.find env.buffer_creg name)
      in
      (access, width, (base, 0))
    end
  in
  let off = scale_index env ~idx:idx_reg ~width in
  (off, access, base)

(* Emit the load of [name].[idx_reg]; frees idx_reg; returns a fresh
   destination register of the element's class. *)
let emit_load env name ~idx_reg =
  let a = env.asm in
  let off, access, (base, base_extra) = address_of env name ~idx_reg in
  give env.itemps idx_reg;
  (* The base lives in the load's immediate: a real compiler materializes
     each buffer base once in a register; folding it here keeps the dynamic
     instruction count comparable to compiled code without modelling
     register-resident globals. *)
  let result =
    match base with
    | Base_const addr_base -> (
        match access with
        | `Int (w, _) ->
            let d = take env.itemps in
            Asm.emit a (Insn.Lx (w, d, off, addr_base + base_extra));
            `I d
        | `Float (w, _) ->
            let d = take env.ftemps in
            Asm.emit a (Insn.Flx (w, d, off, addr_base + base_extra));
            `F d)
    | Base_creg c -> (
        Asm.emit a (Insn.Cincoffset (addr_creg, c, off));
        match access with
        | `Int (w, _) ->
            let d = take env.itemps in
            Asm.emit a (Insn.Clx (w, d, addr_creg, base_extra));
            `I d
        | `Float (w, _) ->
            let d = take env.ftemps in
            Asm.emit a (Insn.Cflx (w, d, addr_creg, base_extra));
            `F d)
  in
  give env.itemps off;
  result

(* Emit the store of an evaluated value register; frees idx_reg and the
   value register if it is a temp (caller passes ownership). *)
let emit_store env name ~idx_reg ~value =
  let a = env.asm in
  let off, access, (base, base_extra) = address_of env name ~idx_reg in
  give env.itemps idx_reg;
  (match (base, access, value) with
  | Base_const addr_base, `Int (w, _), `I s ->
      Asm.emit a (Insn.Sx (w, s, off, addr_base + base_extra))
  | Base_const addr_base, `Float (w, _), `F s ->
      Asm.emit a (Insn.Fsx (w, s, off, addr_base + base_extra))
  | Base_creg c, `Int (w, _), `I s ->
      Asm.emit a (Insn.Cincoffset (addr_creg, c, off));
      Asm.emit a (Insn.Csx (w, s, addr_creg, base_extra))
  | Base_creg c, `Float (w, _), `F s ->
      Asm.emit a (Insn.Cincoffset (addr_creg, c, off));
      Asm.emit a (Insn.Cfsx (w, s, addr_creg, base_extra))
  | _, `Int _, `F _ | _, `Float _, `I _ ->
      fail "type mismatch storing to %s" name);
  give env.itemps off

let free_value env = function
  | `I r -> give env.itemps r
  | `F r -> give env.ftemps r

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval env (e : Kernel.Ir.exp) =
  let a = env.asm in
  match e with
  | Int n ->
      let d = take env.itemps in
      Asm.emit a (Insn.Li (d, n));
      `I d
  | Flt x ->
      let d = take env.ftemps in
      Asm.emit a (Insn.Fli (d, x));
      `F d
  | Param name -> (
      match List.assoc_opt name env.params with
      | Some (Kernel.Value.VI n) ->
          let d = take env.itemps in
          Asm.emit a (Insn.Li (d, n));
          `I d
      | Some (Kernel.Value.VF x) ->
          let d = take env.ftemps in
          Asm.emit a (Insn.Fli (d, x));
          `F d
      | None -> fail "unknown param %s" name)
  | Var name -> (
      (* Copy into a temp so the caller can consume it uniformly. *)
      match Hashtbl.find_opt env.locals name with
      | Some (TI, r) ->
          let d = take env.itemps in
          Asm.emit a (Insn.Add (d, 0, r));
          `I d
      | Some (TF, r) ->
          let d = take env.ftemps in
          Asm.emit a (Insn.Fmv (d, r));
          `F d
      | None -> fail "unbound local %s" name)
  | Load (name, idx_exp) -> (
      match eval env idx_exp with
      | `I idx_reg -> emit_load env name ~idx_reg
      | `F _ -> fail "float index into %s" name)
  | Bin (op, lhs, rhs) -> eval_binop env op lhs rhs
  | Un (op, arg) -> eval_unop env op arg

and eval_int env e =
  match eval env e with
  | `I r -> r
  | `F _ -> fail "expected an integer expression"

and eval_float env e =
  match eval env e with
  | `F r -> r
  | `I _ -> fail "expected a float expression"

and eval_binop env (op : Kernel.Ir.binop) lhs rhs =
  let a = env.asm in
  let int3 mk =
    let ra = eval_int env lhs in
    let rb = eval_int env rhs in
    let d = take env.itemps in
    mk d ra rb;
    give env.itemps ra;
    give env.itemps rb;
    `I d
  in
  let flt3 mk =
    let ra = eval_float env lhs in
    let rb = eval_float env rhs in
    let d = take env.ftemps in
    Asm.emit a (mk d ra rb);
    give env.ftemps ra;
    give env.ftemps rb;
    `F d
  in
  let fcmp mk =
    let ra = eval_float env lhs in
    let rb = eval_float env rhs in
    let d = take env.itemps in
    Asm.emit a (mk d ra rb);
    give env.ftemps ra;
    give env.ftemps rb;
    `I d
  in
  let not_into d =
    (* d := 1 - d, for boolean results *)
    Asm.emit a (Insn.Li (1, 1));
    Asm.emit a (Insn.Sub (d, 1, d))
  in
  match op with
  | Add -> int3 (fun d x y -> Asm.emit a (Insn.Add (d, x, y)))
  | Sub -> int3 (fun d x y -> Asm.emit a (Insn.Sub (d, x, y)))
  | Mul -> int3 (fun d x y -> Asm.emit a (Insn.Mul (d, x, y)))
  | Div -> int3 (fun d x y -> Asm.emit a (Insn.Div (d, x, y)))
  | Mod -> int3 (fun d x y -> Asm.emit a (Insn.Rem (d, x, y)))
  | Band -> int3 (fun d x y -> Asm.emit a (Insn.And (d, x, y)))
  | Bor -> int3 (fun d x y -> Asm.emit a (Insn.Or (d, x, y)))
  | Bxor -> int3 (fun d x y -> Asm.emit a (Insn.Xor (d, x, y)))
  | Shl -> int3 (fun d x y -> Asm.emit a (Insn.Sll (d, x, y)))
  | Shr -> int3 (fun d x y -> Asm.emit a (Insn.Sra (d, x, y)))
  | Lt -> int3 (fun d x y -> Asm.emit a (Insn.Slt (d, x, y)))
  | Gt -> int3 (fun d x y -> Asm.emit a (Insn.Slt (d, y, x)))
  | Le ->
      int3 (fun d x y ->
          Asm.emit a (Insn.Slt (d, y, x));
          not_into d)
  | Ge ->
      int3 (fun d x y ->
          Asm.emit a (Insn.Slt (d, x, y));
          not_into d)
  | Eq ->
      int3 (fun d x y ->
          Asm.emit a (Insn.Sub (1, x, y));
          Asm.emit a (Insn.Sltu (d, 0, 1));
          not_into d)
  | Ne ->
      int3 (fun d x y ->
          Asm.emit a (Insn.Sub (1, x, y));
          Asm.emit a (Insn.Sltu (d, 0, 1)))
  | Imin ->
      int3 (fun d x y ->
          let skip = Asm.new_label env.asm in
          Asm.emit a (Insn.Slt (1, x, y));
          Asm.emit a (Insn.Add (d, 0, x));
          Asm.branch env.asm (fun l -> Insn.Bne (1, 0, l)) skip;
          Asm.emit a (Insn.Add (d, 0, y));
          Asm.place env.asm skip)
  | Imax ->
      int3 (fun d x y ->
          let skip = Asm.new_label env.asm in
          Asm.emit a (Insn.Slt (1, y, x));
          Asm.emit a (Insn.Add (d, 0, x));
          Asm.branch env.asm (fun l -> Insn.Bne (1, 0, l)) skip;
          Asm.emit a (Insn.Add (d, 0, y));
          Asm.place env.asm skip)
  | Fadd -> flt3 (fun d x y -> Insn.Fadd (d, x, y))
  | Fsub -> flt3 (fun d x y -> Insn.Fsub (d, x, y))
  | Fmul -> flt3 (fun d x y -> Insn.Fmul (d, x, y))
  | Fdiv -> flt3 (fun d x y -> Insn.Fdiv (d, x, y))
  | Fmin -> flt3 (fun d x y -> Insn.Fmin (d, x, y))
  | Fmax -> flt3 (fun d x y -> Insn.Fmax (d, x, y))
  | Flt -> fcmp (fun d x y -> Insn.Flt_ (d, x, y))
  | Fle -> fcmp (fun d x y -> Insn.Fle (d, x, y))
  | Fgt -> fcmp (fun d x y -> Insn.Flt_ (d, y, x))
  | Fge -> fcmp (fun d x y -> Insn.Fle (d, y, x))

and eval_unop env (op : Kernel.Ir.unop) arg =
  let a = env.asm in
  match op with
  | Neg ->
      let r = eval_int env arg in
      let d = take env.itemps in
      Asm.emit a (Insn.Sub (d, 0, r));
      give env.itemps r;
      `I d
  | Bnot ->
      let r = eval_int env arg in
      let d = take env.itemps in
      Asm.emit a (Insn.Li (1, -1));
      Asm.emit a (Insn.Xor (d, r, 1));
      give env.itemps r;
      `I d
  | I2f ->
      let r = eval_int env arg in
      let d = take env.ftemps in
      Asm.emit a (Insn.Fcvt_d_l (d, r));
      give env.itemps r;
      `F d
  | F2i ->
      let r = eval_float env arg in
      let d = take env.itemps in
      Asm.emit a (Insn.Fcvt_l_d (d, r));
      give env.ftemps r;
      `I d
  | Fneg | Fabs | Fsqrt | Fexp ->
      let r = eval_float env arg in
      let d = take env.ftemps in
      Asm.emit a
        (match op with
        | Fneg -> Insn.Fneg (d, r)
        | Fabs -> Insn.Fabs (d, r)
        | Fsqrt -> Insn.Fsqrt (d, r)
        | _ -> Insn.Fexp (d, r));
      give env.ftemps r;
      `F d

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let bind_local env name ty =
  match Hashtbl.find_opt env.locals name with
  | Some (ty', r) ->
      if ty <> ty' then fail "local %s changes type" name;
      (ty, r)
  | None ->
      let r = match ty with TI -> take env.ilocals | TF -> take env.flocals in
      Hashtbl.add env.locals name (ty, r);
      (ty, r)

let assign_local env name value =
  let a = env.asm in
  match value with
  | `I r ->
      let _, dst = bind_local env name TI in
      Asm.emit a (Insn.Add (dst, 0, r));
      give env.itemps r
  | `F r ->
      let _, dst = bind_local env name TF in
      Asm.emit a (Insn.Fmv (dst, r));
      give env.ftemps r

let rec exec env (s : Kernel.Ir.stmt) =
  let a = env.asm in
  match s with
  | Let (name, e) ->
      (* Bind the type before evaluation so self-referencing updates
         (x := x + 1) see the local. *)
      ignore (bind_local env name (infer env e));
      assign_local env name (eval env e)
  | Store (name, idx_exp, value_exp) ->
      let idx_reg = eval_int env idx_exp in
      let value = eval env value_exp in
      emit_store env name ~idx_reg ~value;
      free_value env value
  | For (var, lo, hi, body) ->
      (* Like the reference interpreter, a body that assigns to its own loop
         variable must not change the trip count; such loops are driven by a
         hidden counter and the visible variable refreshed per iteration.
         Loops that never write their variable (all of MachSuite) are driven
         by the variable's register directly. *)
      let rec stmt_assigns var (s : Kernel.Ir.stmt) =
        match s with
        | Let (name, _) -> name = var
        | Store _ | Memcpy _ -> false
        | For (v2, _, _, b) ->
            (* An inner loop reusing the same variable name writes it. *)
            v2 = var || List.exists (stmt_assigns var) b
        | While (_, b) -> List.exists (stmt_assigns var) b
        | If (_, b1, b2) ->
            List.exists (stmt_assigns var) b1 || List.exists (stmt_assigns var) b2
      in
      let body_writes_var = List.exists (stmt_assigns var) body in
      let _, var_reg = bind_local env var TI in
      let counter = if body_writes_var then take env.ilocals else var_reg in
      let lo_val = eval_int env lo in
      Asm.emit a (Insn.Add (counter, 0, lo_val));
      give env.itemps lo_val;
      let bound = take env.ilocals in
      let hi_val = eval_int env hi in
      Asm.emit a (Insn.Add (bound, 0, hi_val));
      give env.itemps hi_val;
      let head = Asm.new_label a and exit_l = Asm.new_label a in
      Asm.place a head;
      Asm.branch a (fun l -> Insn.Bge (counter, bound, l)) exit_l;
      if body_writes_var then Asm.emit a (Insn.Add (var_reg, 0, counter));
      List.iter (exec env) body;
      Asm.emit a (Insn.Addi (counter, counter, 1));
      Asm.branch a (fun l -> Insn.Jal l) head;
      Asm.place a exit_l;
      if body_writes_var then Asm.emit a (Insn.Add (var_reg, 0, counter));
      give env.ilocals bound;
      if body_writes_var then give env.ilocals counter
  | While (cond, body) ->
      let head = Asm.new_label a and exit_l = Asm.new_label a in
      Asm.place a head;
      let c = eval_int env cond in
      Asm.branch a (fun l -> Insn.Beq (c, 0, l)) exit_l;
      give env.itemps c;
      List.iter (exec env) body;
      Asm.branch a (fun l -> Insn.Jal l) head;
      Asm.place a exit_l
  | If (cond, then_, else_) ->
      let else_l = Asm.new_label a and end_l = Asm.new_label a in
      let c = eval_int env cond in
      Asm.branch a (fun l -> Insn.Beq (c, 0, l)) else_l;
      give env.itemps c;
      List.iter (exec env) then_;
      Asm.branch a (fun l -> Insn.Jal l) end_l;
      Asm.place a else_l;
      List.iter (exec env) else_;
      Asm.place a end_l
  | Memcpy { dst; src; elems } ->
      (* Lower to an element-copy loop (what -O0 would do; widths and
         narrowing come out identical to the reference semantics). *)
      let n = take env.ilocals in
      let n_val = eval_int env elems in
      Asm.emit a (Insn.Add (n, 0, n_val));
      give env.itemps n_val;
      let k = take env.ilocals in
      Asm.emit a (Insn.Li (k, 0));
      let head = Asm.new_label a and exit_l = Asm.new_label a in
      Asm.place a head;
      Asm.branch a (fun l -> Insn.Bge (k, n, l)) exit_l;
      let idx1 = take env.itemps in
      Asm.emit a (Insn.Add (idx1, 0, k));
      let value = emit_load env src ~idx_reg:idx1 in
      let idx2 = take env.itemps in
      Asm.emit a (Insn.Add (idx2, 0, k));
      emit_store env dst ~idx_reg:idx2 ~value;
      free_value env value;
      Asm.emit a (Insn.Addi (k, k, 1));
      Asm.branch a (fun l -> Insn.Jal l) head;
      Asm.place a exit_l;
      give env.ilocals k;
      give env.ilocals n

let compile ~target ~layout ~scratch_base ~params (kernel : Kernel.Ir.t) =
  (match Kernel.Ir.validate kernel with
  | Ok () -> ()
  | Error msg -> fail "invalid kernel: %s" msg);
  let scratch_offsets = Hashtbl.create 8 in
  let offsets_list, scratch_bytes =
    List.fold_left
      (fun (acc, off) (d : Kernel.Ir.buf_decl) ->
        Hashtbl.add scratch_offsets d.buf_name off;
        ((d.buf_name, off) :: acc, off + (d.len * 8)))
      ([], 0) kernel.scratch
  in
  let buffer_creg = Hashtbl.create 8 in
  let buffer_cregs =
    List.mapi
      (fun idx (d : Kernel.Ir.buf_decl) ->
        let c = first_buffer_creg + idx in
        if c > 31 then fail "too many buffers for capability registers";
        Hashtbl.add buffer_creg d.buf_name c;
        (d.buf_name, c))
      kernel.bufs
  in
  let env =
    {
      target; asm = Asm.create (); layout; kernel; params; scratch_base;
      scratch_offsets;
      locals = Hashtbl.create 32;
      itemps = make_pool "integer temporary" 2 8;
      ftemps = make_pool "FP temporary" 1 8;
      ilocals = make_pool "integer local" 9 31;
      flocals = make_pool "FP local" 9 31;
      buffer_creg;
    }
  in
  List.iter (exec env) kernel.body;
  Asm.emit env.asm Insn.Halt;
  {
    insns = Asm.finalize env.asm;
    scratch_bytes;
    scratch_offsets = List.rev offsets_list;
    buffer_cregs;
  }

let disassemble p =
  Array.to_list p.insns
  |> List.mapi (fun idx insn -> Printf.sprintf "%4d: %s" idx (Insn.to_string insn))
  |> String.concat "\n"
