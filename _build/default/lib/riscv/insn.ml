type reg = int
type freg = int
type creg = int

type width = B | W | D
type fwidth = FW | FD

type t =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg
  | Sra of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Addi of reg * reg * int
  | Li of reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Jal of int
  | Lx of width * reg * reg * int
  | Sx of width * reg * reg * int
  | Fadd of freg * freg * freg
  | Fsub of freg * freg * freg
  | Fmul of freg * freg * freg
  | Fdiv of freg * freg * freg
  | Fsqrt of freg * freg
  | Fexp of freg * freg
      (** pseudo: the libm exp() call the compiler emits, folded to one
          long-latency instruction *)
  | Fmin of freg * freg * freg
  | Fmax of freg * freg * freg
  | Fneg of freg * freg
  | Fabs of freg * freg
  | Fmv of freg * freg
  | Feq of reg * freg * freg
  | Flt_ of reg * freg * freg
  | Fle of reg * freg * freg
  | Fcvt_d_l of freg * reg
  | Fcvt_l_d of reg * freg
  | Fli of freg * float
  | Flx of fwidth * freg * reg * int
  | Fsx of fwidth * freg * reg * int
  | Cmove of creg * creg
  | Csetbounds of creg * creg * reg
  | Candperm of creg * creg * reg
  | Cincoffset of creg * creg * reg
  | Cincoffsetimm of creg * creg * int
  | Clx of width * reg * creg * int
  | Csx of width * reg * creg * int
  | Cflx of fwidth * freg * creg * int
  | Cfsx of fwidth * freg * creg * int
  | Halt

let width_name = function B -> "b" | W -> "w" | D -> "d"
let fwidth_name = function FW -> "w" | FD -> "d"

let r3 name d a b = Printf.sprintf "%-6s x%d, x%d, x%d" name d a b
let f3 name d a b = Printf.sprintf "%-6s f%d, f%d, f%d" name d a b

let to_string = function
  | Add (d, a, b) -> r3 "add" d a b
  | Sub (d, a, b) -> r3 "sub" d a b
  | Mul (d, a, b) -> r3 "mul" d a b
  | Div (d, a, b) -> r3 "div" d a b
  | Rem (d, a, b) -> r3 "rem" d a b
  | And (d, a, b) -> r3 "and" d a b
  | Or (d, a, b) -> r3 "or" d a b
  | Xor (d, a, b) -> r3 "xor" d a b
  | Sll (d, a, b) -> r3 "sll" d a b
  | Sra (d, a, b) -> r3 "sra" d a b
  | Slt (d, a, b) -> r3 "slt" d a b
  | Sltu (d, a, b) -> r3 "sltu" d a b
  | Addi (d, a, imm) -> Printf.sprintf "%-6s x%d, x%d, %d" "addi" d a imm
  | Li (d, imm) -> Printf.sprintf "%-6s x%d, %d" "li" d imm
  | Beq (a, b, t) -> Printf.sprintf "%-6s x%d, x%d, @%d" "beq" a b t
  | Bne (a, b, t) -> Printf.sprintf "%-6s x%d, x%d, @%d" "bne" a b t
  | Blt (a, b, t) -> Printf.sprintf "%-6s x%d, x%d, @%d" "blt" a b t
  | Bge (a, b, t) -> Printf.sprintf "%-6s x%d, x%d, @%d" "bge" a b t
  | Jal t -> Printf.sprintf "%-6s @%d" "j" t
  | Lx (w, d, base, off) ->
      Printf.sprintf "l%-5s x%d, %d(x%d)" (width_name w) d off base
  | Sx (w, s, base, off) ->
      Printf.sprintf "s%-5s x%d, %d(x%d)" (width_name w) s off base
  | Fadd (d, a, b) -> f3 "fadd.d" d a b
  | Fsub (d, a, b) -> f3 "fsub.d" d a b
  | Fmul (d, a, b) -> f3 "fmul.d" d a b
  | Fdiv (d, a, b) -> f3 "fdiv.d" d a b
  | Fsqrt (d, a) -> Printf.sprintf "%-6s f%d, f%d" "fsqrt.d" d a
  | Fexp (d, a) -> Printf.sprintf "%-6s f%d, f%d" "call_exp" d a
  | Fmin (d, a, b) -> f3 "fmin.d" d a b
  | Fmax (d, a, b) -> f3 "fmax.d" d a b
  | Fneg (d, a) -> Printf.sprintf "%-6s f%d, f%d" "fneg.d" d a
  | Fabs (d, a) -> Printf.sprintf "%-6s f%d, f%d" "fabs.d" d a
  | Fmv (d, a) -> Printf.sprintf "%-6s f%d, f%d" "fmv.d" d a
  | Feq (d, a, b) -> Printf.sprintf "%-6s x%d, f%d, f%d" "feq.d" d a b
  | Flt_ (d, a, b) -> Printf.sprintf "%-6s x%d, f%d, f%d" "flt.d" d a b
  | Fle (d, a, b) -> Printf.sprintf "%-6s x%d, f%d, f%d" "fle.d" d a b
  | Fcvt_d_l (d, a) -> Printf.sprintf "%-6s f%d, x%d" "fcvt.d.l" d a
  | Fcvt_l_d (d, a) -> Printf.sprintf "%-6s x%d, f%d" "fcvt.l.d" d a
  | Fli (d, x) -> Printf.sprintf "%-6s f%d, %g" "fli" d x
  | Flx (w, d, base, off) ->
      Printf.sprintf "fl%-4s f%d, %d(x%d)" (fwidth_name w) d off base
  | Fsx (w, s, base, off) ->
      Printf.sprintf "fs%-4s f%d, %d(x%d)" (fwidth_name w) s off base
  | Cmove (d, a) -> Printf.sprintf "%-6s c%d, c%d" "cmove" d a
  | Csetbounds (d, a, r) -> Printf.sprintf "%-6s c%d, c%d, x%d" "csetbounds" d a r
  | Candperm (d, a, r) -> Printf.sprintf "%-6s c%d, c%d, x%d" "candperm" d a r
  | Cincoffset (d, a, r) -> Printf.sprintf "%-6s c%d, c%d, x%d" "cincoffset" d a r
  | Cincoffsetimm (d, a, imm) ->
      Printf.sprintf "%-6s c%d, c%d, %d" "cincoffset" d a imm
  | Clx (w, d, base, off) ->
      Printf.sprintf "cl%-4s x%d, %d(c%d)" (width_name w) d off base
  | Csx (w, s, base, off) ->
      Printf.sprintf "cs%-4s x%d, %d(c%d)" (width_name w) s off base
  | Cflx (w, d, base, off) ->
      Printf.sprintf "cfl%-3s f%d, %d(c%d)" (fwidth_name w) d off base
  | Cfsx (w, s, base, off) ->
      Printf.sprintf "cfs%-3s f%d, %d(c%d)" (fwidth_name w) s off base
  | Halt -> "halt"

type cost_class =
  | C_alu
  | C_mul
  | C_div
  | C_branch
  | C_mem
  | C_fadd
  | C_fmul
  | C_fdiv
  | C_fspec
  | C_cheri

let cost_class = function
  | Add _ | Sub _ | And _ | Or _ | Xor _ | Sll _ | Sra _ | Slt _ | Sltu _
  | Addi _ | Li _ -> C_alu
  | Mul _ -> C_mul
  | Div _ | Rem _ -> C_div
  | Beq _ | Bne _ | Blt _ | Bge _ | Jal _ | Halt -> C_branch
  | Lx _ | Sx _ | Flx _ | Fsx _ | Clx _ | Csx _ | Cflx _ | Cfsx _ -> C_mem
  | Fadd _ | Fsub _ | Fmin _ | Fmax _ | Fneg _ | Fabs _ | Fmv _ | Feq _
  | Flt_ _ | Fle _ | Fcvt_d_l _ | Fcvt_l_d _ | Fli _ -> C_fadd
  | Fmul _ -> C_fmul
  | Fdiv _ -> C_fdiv
  | Fsqrt _ | Fexp _ -> C_fspec
  | Cmove _ | Csetbounds _ | Candperm _ | Cincoffset _ | Cincoffsetimm _ -> C_cheri
