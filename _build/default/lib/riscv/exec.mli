(** The kernel runner: compile, set up the machine, execute.

    In [Purecap_target] the runner plays the role of a CHERI-aware runtime:
    it derives one bounded capability per heap buffer (write permission only
    for writable buffers) and one for the scratch arena, installs them in the
    capability registers the generated code expects, and starts the core.
    The kernel code itself never sees a raw address. *)

type run = {
  machine : Machine.result;
  program : Codegen.program;
}

val run_kernel :
  target:Codegen.target ->
  mem:Tagmem.Mem.t ->
  heap:Tagmem.Alloc.t ->
  layout:Memops.Layout.t ->
  ?params:(string * Kernel.Value.t) list ->
  ?fuel:int ->
  Kernel.Ir.t ->
  run
(** Compiles the kernel, allocates the scratch arena from [heap] (freed
    before returning), executes, and reports the machine result.  Raises
    {!Codegen.Codegen_error} on uncompilable kernels; traps are reported in
    the result, not raised. *)
