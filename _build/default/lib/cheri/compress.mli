(** The 128-bit in-memory capability format (Figure 3 of the paper), plus the
    out-of-band tag bit.

    Layout:
    - low word: the 64-bit address (cursor);
    - high word, from bit 0: encoded length (14) | base mantissa (14) |
      exponent (6) | otype (18) | permissions (12).

    The tag bit never lives inside the 128 bits — it travels on a separate
    wire / shadow store ({!Tagmem}), which is exactly what makes capabilities
    unforgeable by byte-level writes. *)

type words = { hi : int64; lo : int64 }
(** The raw 128 bits as stored in memory. *)

val encode : Cap.t -> words
(** Pack a capability.  Raises [Invalid_argument] if the bounds are not
    representable (impossible for capabilities built through {!Cap}'s API,
    which rounds; possible only for {!Cap.unsafe_make} forgeries). *)

val decode : tag:bool -> words -> Cap.t
(** Unpack.  [decode ~tag (encode c) = c] whenever [c.addr] lies within
    [c.base, c.top] and [tag = c.tag] — the round-trip property tested in the
    suite. *)

val zero : words
(** All-zero bits (what a scrubbed capability slot holds). *)

val equal_words : words -> words -> bool
