let mantissa_width = 14
let exponent_bits = 6

let mantissa_limit = 1 lsl mantissa_width

(* Span of the region in units of 2^e blocks, base rounded down and top
   rounded up. *)
let span_at ~base ~top e = ((top + (1 lsl e) - 1) asr e) - (base asr e)

let exponent_for ~base ~top =
  let rec go e = if span_at ~base ~top e < mantissa_limit then e else go (e + 1) in
  go 0

let round ~base ~top =
  assert (0 <= base && base <= top);
  let e = exponent_for ~base ~top in
  ((base asr e) lsl e, ((top + (1 lsl e) - 1) asr e) lsl e)

let is_exact ~base ~top = round ~base ~top = (base, top)

let encode_bounds ~base ~top =
  if not (is_exact ~base ~top) then
    invalid_arg "Bounds_enc.encode_bounds: bounds not representable";
  let e = exponent_for ~base ~top in
  let b = base asr e and t = top asr e in
  (e, b land (mantissa_limit - 1), t - b)

let malloc_shape ~length =
  let length = max length 1 in
  let e = exponent_for ~base:0 ~top:length in
  let align = 1 lsl e in
  (align, (length + align - 1) / align * align)

let decode_bounds ~addr ~e ~b_low ~len_m =
  let a = addr asr e in
  let a_mid = a land (mantissa_limit - 1) in
  let a_hi = a asr mantissa_width in
  let b_hi = if a_mid >= b_low then a_hi else a_hi - 1 in
  let b = (b_hi lsl mantissa_width) lor b_low in
  let base = b lsl e in
  (base, (b + len_m) lsl e)
