(** Compressed-bounds arithmetic shared by {!Cap} (representability rounding)
    and {!Compress} (the 128-bit format).

    The scheme is CHERI Concentrate reduced to its essence: bounds are encoded
    relative to the capability's address as an exponent [e] plus two mantissas —
    the low {!mantissa_width} bits of [base >> e] and the encoded length
    [(top >> e) - (base >> e)].  Decoding reconstructs the high bits of the
    base from the address, which is exact whenever the address lies inside
    [base, top] (an invariant {!Cap.set_address} maintains by clearing the tag
    otherwise). *)

val mantissa_width : int
(** Mantissa width in bits (14). *)

val exponent_bits : int
(** Bits reserved for the exponent in the encoding (6). *)

val exponent_for : base:int -> top:int -> int
(** The smallest exponent at which the region rounds to a representable one. *)

val round : base:int -> top:int -> int * int
(** [round ~base ~top] is the smallest representable [(base', top')] with
    [base' <= base] and [top' >= top] ({i representability rounding}).
    Requires [0 <= base <= top <= Cap.max_address]. *)

val is_exact : base:int -> top:int -> bool
(** True when [round ~base ~top = (base, top)]. *)

val encode_bounds : base:int -> top:int -> int * int * int
(** [(e, b_low, len_m)] for representable bounds; raises [Invalid_argument]
    when the bounds are not exactly representable. *)

val decode_bounds : addr:int -> e:int -> b_low:int -> len_m:int -> int * int
(** Reconstruct [(base, top)].  Exact when the original address satisfied
    [base <= addr <= top]. *)

val malloc_shape : length:int -> int * int
(** [(align, padded_length)] such that any [align]-aligned base gives exactly
    representable bounds of [padded_length] bytes covering a [length]-byte
    request.  This is what a CHERI-aware allocator pads requests with so a
    capability never spills into a neighbouring allocation. *)
