type words = { hi : int64; lo : int64 }

let mw = Bounds_enc.mantissa_width
let len_shift = 0
let b_low_shift = mw
let e_shift = 2 * mw
let otype_shift = e_shift + Bounds_enc.exponent_bits
let perms_shift = otype_shift + 18

let field v shift = Int64.shift_left (Int64.of_int v) shift

let extract w shift width =
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical w shift)
       (Int64.sub (Int64.shift_left 1L width) 1L))

let encode (c : Cap.t) =
  let e, b_low, len_m = Bounds_enc.encode_bounds ~base:c.base ~top:c.top in
  let hi =
    List.fold_left Int64.logor 0L
      [ field len_m len_shift; field b_low b_low_shift; field e e_shift;
        field c.otype otype_shift; field (Perms.to_mask c.perms) perms_shift ]
  in
  { hi; lo = Int64.of_int c.addr }

let decode ~tag { hi; lo } =
  let len_m = extract hi len_shift mw in
  let b_low = extract hi b_low_shift mw in
  let e = extract hi e_shift Bounds_enc.exponent_bits in
  let otype = extract hi otype_shift 18 in
  let perms = Perms.of_mask (extract hi perms_shift 12) in
  let addr = Int64.to_int lo in
  let base, top = Bounds_enc.decode_bounds ~addr ~e ~b_low ~len_m in
  Cap.unsafe_make ~tag ~perms ~otype ~base ~top ~addr

let zero = { hi = 0L; lo = 0L }
let equal_words a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo
