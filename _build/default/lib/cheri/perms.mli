(** Architectural permission bits of a CHERI capability.

    Permissions form a bitset that can only ever be reduced ({i monotonicity}).
    The bit assignments follow the CHERI ISA's architectural permissions
    (CHERI ISAv9, §2.3); the exact positions only matter for the 128-bit
    in-memory encoding in {!Compress}. *)

type t = private int
(** A permission set (12-bit mask). *)

val global : t
val execute : t
val load : t
val store : t
val load_cap : t
val store_cap : t
val store_local_cap : t
val seal : t
val invoke : t
val unseal : t
val system_regs : t
val set_cid : t

val none : t
(** The empty permission set. *)

val all : t
(** Every permission (the root capability's set). *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val mem : t -> t -> bool
(** [mem p set] is true when every bit of [p] is present in [set]. *)

val subset : t -> t -> bool
(** [subset a b] is true when [a]'s bits are all in [b]. *)

val data_rw : t
(** [load + store + global]: what the driver grants for an accelerator's data
    buffer — deliberately excluding capability load/store so DMA can never
    traffic in valid capabilities. *)

val data_ro : t
(** [load + global]: read-only buffer grant. *)

val of_mask : int -> t
(** Reconstruct from a raw 12-bit mask (used by decode). Out-of-range bits are
    rejected with [Invalid_argument]. *)

val to_mask : t -> int

val to_string : t -> string
(** Compact human-readable form, e.g. ["GRW"]. *)
