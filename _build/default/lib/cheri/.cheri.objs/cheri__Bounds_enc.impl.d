lib/cheri/bounds_enc.ml:
