lib/cheri/cap.ml: Bounds_enc Format Perms Printf
