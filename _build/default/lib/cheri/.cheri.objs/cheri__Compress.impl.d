lib/cheri/compress.ml: Bounds_enc Cap Int64 List Perms
