lib/cheri/bounds_enc.mli:
