lib/cheri/perms.ml: Buffer List
