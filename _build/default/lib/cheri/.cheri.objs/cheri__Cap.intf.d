lib/cheri/cap.mli: Format Perms
