lib/cheri/compress.mli: Cap
