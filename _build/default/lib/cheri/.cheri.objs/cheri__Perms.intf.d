lib/cheri/perms.mli:
