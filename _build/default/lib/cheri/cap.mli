(** CHERI capabilities: tagged, bounded, permission-carrying fat pointers.

    This is the architectural (uncompressed) view of a capability — Figure 3 of
    the paper.  The in-memory 128-bit form lives in {!Compress}; bounds set
    through {!set_bounds} are always {e representable}, i.e. they survive an
    encode/decode round trip exactly.

    Two deliberate simplifications against full CHERI, both conservative
    (they can only deny more, never less):
    - {!set_address} clears the tag when the new address falls outside the
      bounds, instead of tracking the small out-of-bounds representable region;
    - sealed object types are a flat 18-bit space with no [otype] reservations.

    All addresses and lengths are in bytes and must fit the simulated physical
    address space ({!max_address_bits} bits). *)

type kind = Read | Write | Exec
(** The three request kinds checked against [load]/[store]/[execute]. *)

type error =
  | Tag_violation        (** capability is untagged (invalid) *)
  | Seal_violation       (** sealed capability used for memory access *)
  | Perm_violation of Perms.t  (** a required permission is missing *)
  | Bounds_violation of { addr : int; size : int }
      (** the access [addr, addr+size) escapes [base, top) *)
  | Monotonicity_violation
      (** a derivation attempted to grow bounds or gain permissions *)
  | Representability_error
      (** requested exact bounds cannot be encoded in 128 bits *)

val error_to_string : error -> string

type t = private {
  tag : bool;
  perms : Perms.t;
  otype : int;  (** 0 = unsealed; 1..2^18-1 = sealed object types *)
  base : int;   (** inclusive lower bound *)
  top : int;    (** exclusive upper bound *)
  addr : int;   (** current cursor *)
}

val max_address_bits : int
(** Width of the simulated physical address space (56, matching the paper's
    Coarse-mode layout that reserves the top 8 bits of a 64-bit address). *)

val max_address : int
(** [2^max_address_bits]. *)

val root : t
(** The boot-time root capability: whole address space, all permissions,
    address 0.  Creating it is the OS's privilege; the simulator's "OS" is the
    test/driver code. *)

val null : t
(** The untagged null capability (all fields zero). *)

val is_sealed : t -> bool
val length : t -> int

val set_bounds : t -> base:int -> length:int -> (t, error) result
(** [set_bounds c ~base ~length] derives a child whose bounds are the requested
    region rounded outward to the nearest representable bounds (CSetBounds).
    Fails with [Monotonicity_violation] if the rounded region escapes [c]'s
    bounds, [Tag_violation]/[Seal_violation] on an invalid or sealed parent.
    The child's address is [base]. *)

val set_bounds_exact : t -> base:int -> length:int -> (t, error) result
(** Like {!set_bounds} but fails with [Representability_error] instead of
    rounding (CSetBoundsExact). *)

val set_address : t -> int -> t
(** Move the cursor.  Clears the tag if the new address is outside
    [base, top] (conservative out-of-bounds handling). *)

val with_perms : t -> Perms.t -> (t, error) result
(** [with_perms c p] intersects permissions (CAndPerm): the result carries
    [inter p c.perms].  Fails on untagged or sealed input. *)

val seal_with : t -> sealer:t -> (t, error) result
(** Seal [c] with the sealing capability [sealer]: the result's otype is
    [sealer.addr], which must be a valid nonzero otype within [sealer]'s
    bounds, and [sealer] needs the [seal] permission. *)

val unseal_with : t -> unsealer:t -> (t, error) result
(** Inverse of {!seal_with}; [unsealer] needs [unseal] permission and its
    address must equal the sealed otype. *)

val clear_tag : t -> t
(** The result of any non-capability-aware write over a capability. *)

val access_ok : t -> addr:int -> size:int -> kind -> (unit, error) result
(** The dereference check applied on every memory access: valid tag, unsealed,
    the right permission for [kind], and [addr, addr+size) within bounds. *)

val derives : parent:t -> t -> bool
(** [derives ~parent c]: [c]'s bounds and permissions are within [parent]'s —
    the invariant every legal derivation chain preserves. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(**/**)

val unsafe_make :
  tag:bool -> perms:Perms.t -> otype:int -> base:int -> top:int -> addr:int -> t
(** Forge an arbitrary capability, bypassing every check.  Exists for two
    legitimate users only: {!Compress.decode} and attack construction in the
    security test-bench (a forged capability must be expressible in order to
    show it is rejected).  Never used by the driver or CapChecker. *)
