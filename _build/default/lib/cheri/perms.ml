type t = int

let global = 1 lsl 0
let execute = 1 lsl 1
let load = 1 lsl 2
let store = 1 lsl 3
let load_cap = 1 lsl 4
let store_cap = 1 lsl 5
let store_local_cap = 1 lsl 6
let seal = 1 lsl 7
let invoke = 1 lsl 8
let unseal = 1 lsl 9
let system_regs = 1 lsl 10
let set_cid = 1 lsl 11

let none = 0
let all = (1 lsl 12) - 1

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b

let mem p set = p land set = p
let subset a b = a land lnot b = 0

let data_rw = global lor load lor store
let data_ro = global lor load

let of_mask m =
  if m < 0 || m > all then invalid_arg "Perms.of_mask: out of range" else m

let to_mask t = t

let letters =
  [ (global, 'G'); (execute, 'X'); (load, 'R'); (store, 'W'); (load_cap, 'r');
    (store_cap, 'w'); (store_local_cap, 'l'); (seal, 'S'); (invoke, 'I');
    (unseal, 'U'); (system_regs, 'Y'); (set_cid, 'C') ]

let to_string t =
  let buf = Buffer.create 12 in
  List.iter (fun (bit, ch) -> if mem bit t then Buffer.add_char buf ch) letters;
  if Buffer.length buf = 0 then "-" else Buffer.contents buf
