type kind = Read | Write | Exec

type error =
  | Tag_violation
  | Seal_violation
  | Perm_violation of Perms.t
  | Bounds_violation of { addr : int; size : int }
  | Monotonicity_violation
  | Representability_error

let error_to_string = function
  | Tag_violation -> "tag violation"
  | Seal_violation -> "seal violation"
  | Perm_violation p -> Printf.sprintf "permission violation (needs %s)" (Perms.to_string p)
  | Bounds_violation { addr; size } ->
      Printf.sprintf "bounds violation at 0x%x+%d" addr size
  | Monotonicity_violation -> "monotonicity violation"
  | Representability_error -> "bounds not representable"

type t = {
  tag : bool;
  perms : Perms.t;
  otype : int;
  base : int;
  top : int;
  addr : int;
}

let max_address_bits = 56
let max_address = 1 lsl max_address_bits

let root =
  { tag = true; perms = Perms.all; otype = 0; base = 0; top = max_address; addr = 0 }

let null = { tag = false; perms = Perms.none; otype = 0; base = 0; top = 0; addr = 0 }

let is_sealed c = c.otype <> 0
let length c = c.top - c.base

let check_derivable c =
  if not c.tag then Error Tag_violation
  else if is_sealed c then Error Seal_violation
  else Ok ()

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let make_child c ~base ~top =
  if base < c.base || top > c.top || base > top then Error Monotonicity_violation
  else Ok { c with base; top; addr = base }

let set_bounds c ~base ~length =
  if length < 0 || base < 0 || base + length > max_address then
    Error Monotonicity_violation
  else
    let* () = check_derivable c in
    let base', top' = Bounds_enc.round ~base ~top:(base + length) in
    make_child c ~base:base' ~top:top'

let set_bounds_exact c ~base ~length =
  if length < 0 || base < 0 || base + length > max_address then
    Error Monotonicity_violation
  else
    let* () = check_derivable c in
    if not (Bounds_enc.is_exact ~base ~top:(base + length)) then
      Error Representability_error
    else make_child c ~base ~top:(base + length)

let set_address c addr =
  if addr < c.base || addr > c.top then { c with addr; tag = false }
  else { c with addr }

let with_perms c p =
  let* () = check_derivable c in
  Ok { c with perms = Perms.inter p c.perms }

let seal_with c ~sealer =
  let* () = check_derivable c in
  let* () = check_derivable sealer in
  if not (Perms.mem Perms.seal sealer.perms) then Error (Perm_violation Perms.seal)
  else if sealer.addr < sealer.base || sealer.addr >= sealer.top then
    Error (Bounds_violation { addr = sealer.addr; size = 1 })
  else if sealer.addr = 0 then Error Seal_violation
  else Ok { c with otype = sealer.addr }

let unseal_with c ~unsealer =
  if not c.tag then Error Tag_violation
  else if not (is_sealed c) then Error Seal_violation
  else
    let* () = check_derivable unsealer in
    if not (Perms.mem Perms.unseal unsealer.perms) then
      Error (Perm_violation Perms.unseal)
    else if unsealer.addr <> c.otype then Error Seal_violation
    else Ok { c with otype = 0 }

let clear_tag c = { c with tag = false }

let perm_for = function
  | Read -> Perms.load
  | Write -> Perms.store
  | Exec -> Perms.execute

let access_ok c ~addr ~size kind =
  if not c.tag then Error Tag_violation
  else if is_sealed c then Error Seal_violation
  else
    let p = perm_for kind in
    if not (Perms.mem p c.perms) then Error (Perm_violation p)
    else if size < 0 || addr < c.base || addr + size > c.top then
      Error (Bounds_violation { addr; size })
    else Ok ()

let derives ~parent c =
  c.base >= parent.base && c.top <= parent.top
  && Perms.subset c.perms parent.perms

let equal a b =
  a.tag = b.tag && a.perms = b.perms && a.otype = b.otype && a.base = b.base
  && a.top = b.top && a.addr = b.addr

let pp fmt c =
  Format.fprintf fmt "[%c %s otype=%d 0x%x..0x%x @0x%x]"
    (if c.tag then 'v' else '-')
    (Perms.to_string c.perms) c.otype c.base c.top c.addr

let to_string c = Format.asprintf "%a" pp c

let unsafe_make ~tag ~perms ~otype ~base ~top ~addr =
  { tag; perms; otype; base; top; addr }
