(* gemm: 64x64 single-precision matrix multiply, two variants (Table 2:
   three 16384 B buffers per instance).

   - gemm_ncubed: the classic triple loop.  The HLS version stages the whole
     B matrix and one A row in BRAM, then the datapath runs at full tilt —
     this is the parallelism-sweep benchmark of Figure 11.
   - gemm_blocked: 8x8 blocking with staged tiles, slightly better CPU cache
     behaviour and burstier DMA. *)

open Kernel.Ir

let n = 64

let mat name ?(writable = false) () = buf ~writable name F32 (n * n)

let init_mat name idx = Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5)

let ncubed_kernel =
  {
    name = "gemm_ncubed";
    bufs = [ mat "m1" (); mat "m2" (); mat "prod" ~writable:true () ];
    scratch = [ buf "bmat" F32 (n * n); buf "arow" F32 n ];
    body =
      [
        memcpy ~dst:"bmat" ~src:"m2" ~elems:(i (n * n));
        for_ "row" (i 0) (i n)
          [
            for_ "k" (i 0) (i n) [ store "arow" (v "k") (ld "m1" ((v "row" *: i n) +: v "k")) ];
            for_ "col" (i 0) (i n)
              [
                let_ "sum" (f 0.0);
                for_ "k" (i 0) (i n)
                  [
                    let_ "sum"
                      (v "sum" +.: (ld "arow" (v "k") *.: ld "bmat" ((v "k" *: i n) +: v "col")));
                  ];
                store "prod" ((v "row" *: i n) +: v "col") (v "sum");
              ];
          ];
      ];
  }

let block = 8

let blocked_kernel =
  {
    name = "gemm_blocked";
    bufs = [ mat "m1" (); mat "m2" (); mat "prod" ~writable:true () ];
    scratch =
      [ buf "atile" F32 (block * n); buf "btile" F32 (n * block);
        buf "ctile" F32 (block * block) ];
    body =
      [
        for_ "jj" (i 0) (i (n / block))
          [
            (* Stage the B panel for this block column: n x block. *)
            for_ "k" (i 0) (i n)
              [
                for_ "j" (i 0) (i block)
                  [
                    store "btile"
                      ((v "k" *: i block) +: v "j")
                      (ld "m2" ((v "k" *: i n) +: ((v "jj" *: i block) +: v "j")));
                  ];
              ];
            for_ "ii" (i 0) (i (n / block))
              [
                (* Stage the A panel: block x n (contiguous rows, bursts). *)
                for_ "bi" (i 0) (i block)
                  [
                    for_ "k" (i 0) (i n)
                      [
                        store "atile"
                          ((v "bi" *: i n) +: v "k")
                          (ld "m1" ((((v "ii" *: i block) +: v "bi") *: i n) +: v "k"));
                      ];
                  ];
                for_ "bi" (i 0) (i block)
                  [
                    for_ "j" (i 0) (i block)
                      [
                        let_ "sum" (f 0.0);
                        for_ "k" (i 0) (i n)
                          [
                            let_ "sum"
                              (v "sum"
                              +.: (ld "atile" ((v "bi" *: i n) +: v "k")
                                  *.: ld "btile" ((v "k" *: i block) +: v "j")));
                          ];
                        store "ctile" ((v "bi" *: i block) +: v "j") (v "sum");
                      ];
                  ];
                (* Write the finished tile back, row bursts. *)
                for_ "bi" (i 0) (i block)
                  [
                    for_ "j" (i 0) (i block)
                      [
                        store "prod"
                          ((((v "ii" *: i block) +: v "bi") *: i n)
                          +: ((v "jj" *: i block) +: v "j"))
                          (ld "ctile" ((v "bi" *: i block) +: v "j"));
                      ];
                  ];
              ];
          ];
      ];
  }

let ncubed =
  Bench_def.make ~kernel:ncubed_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:64.0 ~max_outstanding:4 ~area_luts:20_000 ())
    ~init:init_mat ~output_bufs:[ "prod" ]
    ~description:"64x64 f32 matrix multiply, triple loop with staged operands"
    ()

let blocked =
  Bench_def.make ~kernel:blocked_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:64.0 ~max_outstanding:16 ~area_luts:18_000 ())
    ~init:init_mat ~output_bufs:[ "prod" ]
    ~description:"64x64 f32 matrix multiply, 8x8 blocked with staged tiles"
    ()
