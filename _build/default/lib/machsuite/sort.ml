(* sort: two 2048-element integer sorts (Table 2: merge has two 8192 B
   buffers; radix adds the 2048 B bucket array and the 16 B digit-sum
   buffer).

   sort_merge's per-pass copy-back is a genuine buffer-to-buffer memcpy —
   on the CHERI CPU it runs at 16 bytes per cycle via the capability copy
   instruction, which is the paper's mechanism for a CHERI CPU beating the
   baseline (§6.3, gemm_blocked discussion). *)

open Kernel.Ir

let n = 2048

let merge_kernel =
  {
    name = "sort_merge";
    bufs = [ buf "a" I32 n; buf "temp" I32 n ];
    scratch = [];
    body =
      [
        let_ "width" (i 1);
        while_ (v "width" <: i n)
          [
            let_ "left" (i 0);
            while_ (v "left" <: i n)
              [
                let_ "mid" (imin (v "left" +: v "width") (i n));
                let_ "right" (imin (v "left" +: (v "width" *: i 2)) (i n));
                let_ "p" (v "left");
                let_ "q" (v "mid");
                let_ "k" (v "left");
                while_ ((v "p" <: v "mid") &&: (v "q" <: v "right"))
                  [
                    let_ "x" (ld "a" (v "p"));
                    let_ "y" (ld "a" (v "q"));
                    if_ (v "x" <=: v "y")
                      [
                        store "temp" (v "k") (v "x");
                        let_ "p" (v "p" +: i 1);
                      ]
                      [
                        store "temp" (v "k") (v "y");
                        let_ "q" (v "q" +: i 1);
                      ];
                    let_ "k" (v "k" +: i 1);
                  ];
                while_ (v "p" <: v "mid")
                  [
                    store "temp" (v "k") (ld "a" (v "p"));
                    let_ "p" (v "p" +: i 1);
                    let_ "k" (v "k" +: i 1);
                  ];
                while_ (v "q" <: v "right")
                  [
                    store "temp" (v "k") (ld "a" (v "q"));
                    let_ "q" (v "q" +: i 1);
                    let_ "k" (v "k" +: i 1);
                  ];
                let_ "left" (v "right");
              ];
            memcpy ~dst:"a" ~src:"temp" ~elems:(i n);
            let_ "width" (v "width" *: i 2);
          ];
      ];
  }

let radix_bits = 2
let radix_buckets = 1 lsl radix_bits
let radix_passes = 10  (* keys are bounded by 2^20 *)

let radix_kernel =
  {
    name = "sort_radix";
    bufs =
      [
        buf "a" I32 n;
        buf "b" I32 n;
        buf "bucket" I32 512;
        buf "sum" I32 radix_buckets;
      ];
    scratch = [ buf "off" I32 radix_buckets ];
    body =
      [
        for_ "pass" (i 0) (i radix_passes)
          [
            let_ "sh" (v "pass" *: i radix_bits);
            for_ "q" (i 0) (i radix_buckets) [ store "bucket" (v "q") (i 0) ];
            for_ "k" (i 0) (i n)
              [
                let_ "d" (band (shr (ld "a" (v "k")) (v "sh")) (i (radix_buckets - 1)));
                store "bucket" (v "d") (ld "bucket" (v "d") +: i 1);
              ];
            store "sum" (i 0) (i 0);
            for_ "q" (i 1) (i radix_buckets)
              [
                store "sum" (v "q")
                  (ld "sum" (v "q" -: i 1) +: ld "bucket" (v "q" -: i 1));
              ];
            for_ "q" (i 0) (i radix_buckets) [ store "off" (v "q") (ld "sum" (v "q")) ];
            for_ "k" (i 0) (i n)
              [
                let_ "x" (ld "a" (v "k"));
                let_ "d" (band (shr (v "x") (v "sh")) (i (radix_buckets - 1)));
                let_ "pos" (ld "off" (v "d"));
                store "off" (v "d") (v "pos" +: i 1);
                store "b" (v "pos") (v "x");
              ];
            memcpy ~dst:"a" ~src:"b" ~elems:(i n);
          ];
      ];
  }

let init name idx =
  match name with
  | "a" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:(1 lsl 20))
  | _ -> Kernel.Value.VI 0

let merge =
  Bench_def.make ~kernel:merge_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:8.0 ~max_outstanding:8 ~area_luts:6_000 ())
    ~init ~output_bufs:[ "a" ]
    ~description:"bottom-up merge sort with per-pass DMA copy-back" ()

let radix =
  Bench_def.make ~kernel:radix_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:8.0 ~max_outstanding:8 ~area_luts:7_000 ())
    ~init ~output_bufs:[ "a" ]
    ~description:"LSD radix sort, 2-bit digits with DRAM histograms" ()
