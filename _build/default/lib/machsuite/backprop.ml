(* backprop: forward passes plus an output-layer gradient step for a small
   13-100-5-3 MLP over 64 training samples (Table 2: seven buffers per
   instance, 12 B..10432 B).  Weights are staged into BRAM once; the datapath
   then runs wide MAC trees — this is one of the two >1000x benchmarks. *)

open Kernel.Ir

let n_in = 13
let n_h1 = 100
let n_h2 = 5
let n_out = 3
let samples = 64

let sigmoid e = f 1.0 /.: (f 1.0 +.: fexp (f 0.0 -.: e))

let kernel =
  {
    name = "backprop";
    bufs =
      [
        buf ~writable:false "weights1" F64 1304;  (* 13 x 100 used *)
        buf ~writable:false "weights2" F64 512;   (* 100 x 5 used *)
        buf "weights3" F64 192;                   (* 5 x 3 used; updated *)
        buf ~writable:false "biases" F64 130;     (* 100 + 5 + 3 used *)
        buf ~writable:false "training" F64 832;   (* 64 x 13 *)
        buf ~writable:false "targets" F32 3;
        buf "errors" F64 64;
      ];
    scratch =
      [
        buf "w1s" F64 (n_in * n_h1);
        buf "w2s" F64 (n_h1 * n_h2);
        buf "w3s" F64 (n_h2 * n_out);
        buf "bs" F64 (n_h1 + n_h2 + n_out);
        buf "ts" F64 n_out;
        buf "x" F64 n_in;
        buf "h1" F64 n_h1;
        buf "h2" F64 n_h2;
        buf "d3" F64 n_out;
      ];
    body =
      [
        memcpy ~dst:"w1s" ~src:"weights1" ~elems:(i (n_in * n_h1));
        memcpy ~dst:"w2s" ~src:"weights2" ~elems:(i (n_h1 * n_h2));
        memcpy ~dst:"w3s" ~src:"weights3" ~elems:(i (n_h2 * n_out));
        memcpy ~dst:"bs" ~src:"biases" ~elems:(i (n_h1 + n_h2 + n_out));
        for_ "c" (i 0) (i n_out) [ store "ts" (v "c") (ld "targets" (v "c")) ];
        for_ "epoch" (i 0) (p "epochs")
          [
            for_ "s" (i 0) (i samples)
              [
                for_ "ii" (i 0) (i n_in)
                  [ store "x" (v "ii") (ld "training" ((v "s" *: i n_in) +: v "ii")) ];
                for_ "j" (i 0) (i n_h1)
                  [
                    let_ "sum" (ld "bs" (v "j"));
                    for_ "ii" (i 0) (i n_in)
                      [
                        let_ "sum"
                          (v "sum"
                          +.: (ld "x" (v "ii") *.: ld "w1s" ((v "ii" *: i n_h1) +: v "j")));
                      ];
                    store "h1" (v "j") (sigmoid (v "sum"));
                  ];
                for_ "k" (i 0) (i n_h2)
                  [
                    let_ "sum" (ld "bs" (i n_h1 +: v "k"));
                    for_ "j" (i 0) (i n_h1)
                      [
                        let_ "sum"
                          (v "sum"
                          +.: (ld "h1" (v "j") *.: ld "w2s" ((v "j" *: i n_h2) +: v "k")));
                      ];
                    store "h2" (v "k") (sigmoid (v "sum"));
                  ];
                let_ "err" (f 0.0);
                for_ "c" (i 0) (i n_out)
                  [
                    let_ "sum" (ld "bs" (i (n_h1 + n_h2) +: v "c"));
                    for_ "k" (i 0) (i n_h2)
                      [
                        let_ "sum"
                          (v "sum"
                          +.: (ld "h2" (v "k") *.: ld "w3s" ((v "k" *: i n_out) +: v "c")));
                      ];
                    let_ "delta" (v "sum" -.: ld "ts" (v "c"));
                    store "d3" (v "c") (v "delta");
                    let_ "err" (v "err" +.: (v "delta" *.: v "delta"));
                  ];
                store "errors" (v "s") (v "err");
                for_ "c" (i 0) (i n_out)
                  [
                    for_ "k" (i 0) (i n_h2)
                      [
                        let_ "pos" ((v "k" *: i n_out) +: v "c");
                        store "w3s" (v "pos")
                          (ld "w3s" (v "pos")
                          -.: (f 0.01 *.: (ld "d3" (v "c") *.: ld "h2" (v "k"))));
                      ];
                  ];
              ];
          ];
        memcpy ~dst:"weights3" ~src:"w3s" ~elems:(i (n_h2 * n_out));
      ];
  }

let bench =
  Bench_def.make ~kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:2048.0 ~max_outstanding:16 ~area_luts:26_000 ())
    ~init:(fun name idx ->
      match name with
      | "targets" -> Kernel.Value.VF (Bench_def.hash_float name idx)
      | "errors" -> Kernel.Value.VF 0.0
      | _ -> Kernel.Value.VF ((Bench_def.hash_float name idx -. 0.5) *. 0.5))
    ~params:[ ("epochs", Kernel.Value.VI 8) ]
    ~output_bufs:[ "errors"; "weights3" ]
    ~description:"13-100-5-3 MLP forward + output-layer update, 64 samples"
    ()
