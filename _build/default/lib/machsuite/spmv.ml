(* spmv: sparse matrix-vector product, CRS and ELLPACK storage (Table 2: five
   and four buffers).  CRS gathers the dense vector through column indices —
   dependent loads all the way; ELLPACK stages the (small) dense vector
   on-chip, so only the regular val/cols streams hit DRAM. *)

open Kernel.Ir

(* CRS: 493 rows, 833 nonzeros (row-delimiter buffer holds 494 entries). *)
let crs_rows = 493
let crs_nnz = 833

let crs_kernel =
  {
    name = "spmv_crs";
    bufs =
      [
        buf ~writable:false "val" F64 crs_nnz;
        buf ~writable:false "cols" I32 crs_nnz;
        buf ~writable:false "rowstr" I32 (crs_rows + 1);
        buf ~writable:false "vec" F64 crs_rows;
        buf "out" F64 crs_rows;
      ];
    scratch = [ buf "vs" F64 crs_rows ];
    body =
      [
        memcpy ~dst:"vs" ~src:"vec" ~elems:(i crs_rows);
        for_ "r" (i 0) (i crs_rows)
          [
            let_ "sum" (f 0.0);
            let_ "from" (ld "rowstr" (v "r"));
            let_ "until" (ld "rowstr" (v "r" +: i 1));
            for_ "j" (v "from") (v "until")
              [
                let_ "sum"
                  (v "sum" +.: (ld "val" (v "j") *.: ld "vs" (ld "cols" (v "j"))));
              ];
            store "out" (v "r") (v "sum");
          ];
      ];
  }

(* ELLPACK: 247 rows, 10 nonzeros per row. *)
let ell_rows = 247
let ell_l = 10

let ellpack_kernel =
  {
    name = "spmv_ellpack";
    bufs =
      [
        buf ~writable:false "val" F64 (ell_rows * ell_l);
        buf ~writable:false "cols" I32 (ell_rows * ell_l);
        buf ~writable:false "vec" F64 ell_rows;
        buf "out" F64 ell_rows;
      ];
    scratch = [ buf "vs" F64 ell_rows ];
    body =
      [
        memcpy ~dst:"vs" ~src:"vec" ~elems:(i ell_rows);
        for_ "r" (i 0) (i ell_rows)
          [
            let_ "sum" (f 0.0);
            for_ "j" (i 0) (i ell_l)
              [
                let_ "pos" ((v "r" *: i ell_l) +: v "j");
                let_ "sum"
                  (v "sum" +.: (ld "val" (v "pos") *.: ld "vs" (ld "cols" (v "pos"))));
              ];
            store "out" (v "r") (v "sum");
          ];
      ];
  }

let crs_init name idx =
  match name with
  | "rowstr" -> Kernel.Value.VI (idx * crs_nnz / crs_rows)
  | "cols" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:crs_rows)
  | "out" -> Kernel.Value.VF 0.0
  | _ -> Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5)

let ell_init name idx =
  match name with
  | "cols" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:ell_rows)
  | "out" -> Kernel.Value.VF 0.0
  | _ -> Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5)

let crs =
  Bench_def.make ~kernel:crs_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:16.0 ~max_outstanding:4 ~area_luts:8_000 ())
    ~init:crs_init ~output_bufs:[ "out" ]
    ~description:"CRS sparse matrix-vector product, staged vector, irregular rows" ()

let ellpack =
  Bench_def.make ~kernel:ellpack_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:16.0 ~max_outstanding:4 ~area_luts:8_000 ())
    ~init:ell_init ~output_bufs:[ "out" ]
    ~description:"ELLPACK sparse matrix-vector product, staged vector" ()
