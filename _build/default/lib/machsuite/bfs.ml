(* bfs: breadth-first search over a 256-node, 4096-edge CSR graph (Table 2:
   five buffers, 40 B..16384 B).  The frontier expansion dereferences
   edge targets straight from DRAM — the pointer-chasing pattern that makes
   both variants slower on the accelerator than on the cached CPU (Fig. 7). *)

open Kernel.Ir

let n_nodes = 256
let degree = 16
let n_edges = n_nodes * degree
let n_levels = 10
let unvisited = 255

let bufs =
  [
    buf ~writable:false "nodes_begin" I32 n_nodes;
    buf ~writable:false "nodes_end" I32 n_nodes;
    buf ~writable:false "edges" I32 n_edges;
    buf "level" U8 n_nodes;
    buf "level_counts" I32 n_levels;
  ]

let init name idx =
  match name with
  | "nodes_begin" -> Kernel.Value.VI (idx * degree)
  | "nodes_end" -> Kernel.Value.VI ((idx + 1) * degree)
  | "edges" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:n_nodes)
  | "level" -> Kernel.Value.VI (if idx = 0 then 0 else unvisited)
  | "level_counts" -> Kernel.Value.VI 0
  | _ -> invalid_arg ("bfs init: " ^ name)

let bulk_kernel =
  {
    name = "bfs_bulk";
    bufs;
    scratch = [];
    body =
      [
        for_ "hor" (i 0) (i n_levels)
          [
            let_ "cnt" (i 0);
            for_ "node" (i 0) (i n_nodes)
              [
                when_ (ld "level" (v "node") =: v "hor")
                  [
                    let_ "from" (ld "nodes_begin" (v "node"));
                    let_ "until" (ld "nodes_end" (v "node"));
                    for_ "e" (v "from") (v "until")
                      [
                        let_ "dst" (ld "edges" (v "e"));
                        when_ (ld "level" (v "dst") =: i unvisited)
                          [
                            store "level" (v "dst") (v "hor" +: i 1);
                            let_ "cnt" (v "cnt" +: i 1);
                          ];
                      ];
                  ];
              ];
            store "level_counts" (v "hor") (v "cnt");
          ];
      ];
  }

let queue_kernel =
  {
    name = "bfs_queue";
    bufs;
    scratch = [ buf "queue" I32 n_nodes ];
    body =
      [
        store "queue" (i 0) (i 0);
        let_ "head" (i 0);
        let_ "tail" (i 1);
        while_ (v "head" <: v "tail")
          [
            let_ "node" (ld "queue" (v "head"));
            let_ "head" (v "head" +: i 1);
            let_ "lv" (ld "level" (v "node"));
            let_ "from" (ld "nodes_begin" (v "node"));
            let_ "until" (ld "nodes_end" (v "node"));
            for_ "e" (v "from") (v "until")
              [
                let_ "dst" (ld "edges" (v "e"));
                when_ (ld "level" (v "dst") =: i unvisited)
                  [
                    store "level" (v "dst") (v "lv" +: i 1);
                    store "queue" (v "tail") (v "dst");
                    let_ "tail" (v "tail" +: i 1);
                  ];
              ];
          ];
        (* Histogram the discovered levels. *)
        for_ "node" (i 0) (i n_nodes)
          [
            let_ "lv" (ld "level" (v "node"));
            when_ (v "lv" <: i n_levels)
              [
                store "level_counts" (v "lv") (ld "level_counts" (v "lv") +: i 1);
              ];
          ];
      ];
  }

let directives =
  Hls.Directives.make ~compute_ipc:4.0 ~max_outstanding:2 ~area_luts:5_000 ()

let bulk =
  Bench_def.make ~kernel:bulk_kernel ~directives ~init
    ~output_bufs:[ "level"; "level_counts" ]
    ~description:"horizon-sweep BFS, levels resident in DRAM" ()

let queue =
  Bench_def.make ~kernel:queue_kernel ~directives ~init
    ~output_bufs:[ "level"; "level_counts" ]
    ~description:"work-queue BFS with an on-chip frontier queue" ()
