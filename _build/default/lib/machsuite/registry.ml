let all =
  [
    Aes.bench;
    Backprop.bench;
    Bfs.bulk;
    Bfs.queue;
    Fft.strided;
    Fft.transpose;
    Gemm.blocked;
    Gemm.ncubed;
    Kmp.bench;
    Md.grid;
    Md.knn;
    Nw.bench;
    Sort.merge;
    Sort.radix;
    Spmv.crs;
    Spmv.ellpack;
    Stencil.stencil2d;
    Stencil.stencil3d;
    Viterbi.bench;
  ]

let find name = List.find (fun (b : Bench_def.t) -> b.name = name) all
let names = List.map (fun (b : Bench_def.t) -> b.Bench_def.name) all
