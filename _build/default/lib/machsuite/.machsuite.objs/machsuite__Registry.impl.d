lib/machsuite/registry.ml: Aes Backprop Bench_def Bfs Fft Gemm Kmp List Md Nw Sort Spmv Stencil Viterbi
