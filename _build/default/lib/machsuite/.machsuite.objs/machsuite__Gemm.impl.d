lib/machsuite/gemm.ml: Bench_def Hls Kernel
