lib/machsuite/fft.ml: Bench_def Hls Kernel
