lib/machsuite/md.ml: Bench_def Hls Kernel
