lib/machsuite/spmv.ml: Bench_def Hls Kernel
