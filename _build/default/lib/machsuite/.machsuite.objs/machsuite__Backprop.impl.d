lib/machsuite/backprop.ml: Bench_def Hls Kernel
