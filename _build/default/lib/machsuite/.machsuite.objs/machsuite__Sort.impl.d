lib/machsuite/sort.ml: Bench_def Hls Kernel
