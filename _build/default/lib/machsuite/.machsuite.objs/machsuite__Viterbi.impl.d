lib/machsuite/viterbi.ml: Bench_def Hls Kernel
