lib/machsuite/aes.ml: Bench_def Hls Kernel
