lib/machsuite/kmp.ml: Bench_def Hls Kernel
