lib/machsuite/bench_def.ml: Array Hashtbl Hls Int32 Int64 Kernel List
