lib/machsuite/bfs.ml: Bench_def Hls Kernel
