lib/machsuite/bench_def.mli: Hls Kernel
