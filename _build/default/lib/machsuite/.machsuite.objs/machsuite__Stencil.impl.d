lib/machsuite/stencil.ml: Bench_def Hls Kernel
