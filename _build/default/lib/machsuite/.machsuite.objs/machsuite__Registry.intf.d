lib/machsuite/registry.mli: Bench_def
