lib/machsuite/nw.ml: Bench_def Hls Kernel
