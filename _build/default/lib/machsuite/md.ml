(* md: molecular-dynamics force computation, two variants (Table 2: seven
   buffers each).

   - md_grid: 4x4x4 cell grid, up to 5 particles per cell, Lennard-Jones
     forces between neighbouring cells; positions staged on-chip, heavy
     floating-point per pair — a compute-bound benchmark.
   - md_knn: neighbour-list forces over a deliberately small batch of atoms;
     short absolute runtime with a naive single-outstanding memory interface,
     which is what makes it both slower than the CPU (Fig. 7) and the largest
     relative CapChecker overhead (Fig. 8). *)

open Kernel.Ir

let cells = 4
let max_points = 5
let grid_len = cells * cells * cells * max_points  (* 320 *)

let lj_pair ~xi ~yi ~zi ~px ~py ~pz ~other =
  [
    let_ "dx" (v xi -.: ld px other);
    let_ "dy" (v yi -.: ld py other);
    let_ "dz" (v zi -.: ld pz other);
    let_ "r2"
      ((v "dx" *.: v "dx") +.: ((v "dy" *.: v "dy") +.: ((v "dz" *.: v "dz") +.: f 0.01)));
    let_ "r6" (v "r2" *.: (v "r2" *.: v "r2"));
    let_ "pot" ((f 1.0 /.: (v "r6" *.: v "r6")) -.: (f 1.0 /.: v "r6"));
    let_ "fx" (v "fx" +.: (v "pot" *.: v "dx"));
    let_ "fy" (v "fy" +.: (v "pot" *.: v "dy"));
    let_ "fz" (v "fz" +.: (v "pot" *.: v "dz"));
  ]

let grid_kernel =
  {
    name = "md_grid";
    bufs =
      [
        buf ~writable:false "n_points" I32 64;
        buf ~writable:false "position_x" F64 grid_len;
        buf ~writable:false "position_y" F64 grid_len;
        buf ~writable:false "position_z" F64 grid_len;
        buf "force_x" F64 grid_len;
        buf "force_y" F64 grid_len;
        buf "force_z" F64 grid_len;
      ];
    scratch =
      [
        buf "np" I32 64;
        buf "px" F64 grid_len; buf "py" F64 grid_len; buf "pz" F64 grid_len;
      ];
    body =
      [
        for_ "c" (i 0) (i 64) [ store "np" (v "c") (ld "n_points" (v "c")) ];
        memcpy ~dst:"px" ~src:"position_x" ~elems:(i grid_len);
        memcpy ~dst:"py" ~src:"position_y" ~elems:(i grid_len);
        memcpy ~dst:"pz" ~src:"position_z" ~elems:(i grid_len);
        for_ "cx" (i 0) (i cells)
          [
            for_ "cy" (i 0) (i cells)
              [
                for_ "cz" (i 0) (i cells)
                  [
                    let_ "cell" ((v "cx" *: i 16) +: ((v "cy" *: i 4) +: v "cz"));
                    let_ "homecount" (ld "np" (v "cell"));
                    for_ "pt" (i 0) (v "homecount")
                      [
                        let_ "self" ((v "cell" *: i max_points) +: v "pt");
                        let_ "xi" (ld "px" (v "self"));
                        let_ "yi" (ld "py" (v "self"));
                        let_ "zi" (ld "pz" (v "self"));
                        let_ "fx" (f 0.0); let_ "fy" (f 0.0); let_ "fz" (f 0.0);
                        for_ "nx" (imax (v "cx" -: i 1) (i 0))
                          (imin (v "cx" +: i 2) (i cells))
                          [
                            for_ "ny" (imax (v "cy" -: i 1) (i 0))
                              (imin (v "cy" +: i 2) (i cells))
                              [
                                for_ "nz" (imax (v "cz" -: i 1) (i 0))
                                  (imin (v "cz" +: i 2) (i cells))
                                  [
                                    let_ "ncell"
                                      ((v "nx" *: i 16) +: ((v "ny" *: i 4) +: v "nz"));
                                    for_ "q" (i 0) (ld "np" (v "ncell"))
                                      [
                                        let_ "other"
                                          ((v "ncell" *: i max_points) +: v "q");
                                        when_ (v "other" <>: v "self")
                                          (lj_pair ~xi:"xi" ~yi:"yi" ~zi:"zi"
                                             ~px:"px" ~py:"py" ~pz:"pz"
                                             ~other:(v "other"));
                                      ];
                                  ];
                              ];
                          ];
                        store "force_x" (v "self") (v "fx");
                        store "force_y" (v "self") (v "fy");
                        store "force_z" (v "self") (v "fz");
                      ];
                  ];
              ];
          ];
      ];
  }

let knn_atoms = 8
let knn_neighbors = 32
let knn_points = 128

let knn_kernel =
  {
    name = "md_knn";
    bufs =
      [
        buf ~writable:false "position_x" F64 knn_points;
        buf ~writable:false "position_y" F64 knn_points;
        buf ~writable:false "position_z" F64 knn_points;
        buf "force_x" F64 knn_points;
        buf "force_y" F64 knn_points;
        buf "force_z" F64 knn_points;
        buf ~writable:false "nl" I32 4096;  (* 128 atoms x 32 neighbour slots *)
      ];
    scratch = [];
    body =
      [
        (* Naive HLS output: every neighbour position is gathered straight
           from DRAM through the neighbour-list index — three dependent
           loads per pair. *)
        for_ "a" (i 0) (i knn_atoms)
          [
            let_ "xi" (ld "position_x" (v "a"));
            let_ "yi" (ld "position_y" (v "a"));
            let_ "zi" (ld "position_z" (v "a"));
            let_ "fx" (f 0.0); let_ "fy" (f 0.0); let_ "fz" (f 0.0);
            for_ "j" (i 0) (i knn_neighbors)
              [
                let_ "nid" (ld "nl" ((v "a" *: i knn_neighbors) +: v "j"));
                let_ "dx" (v "xi" -.: ld "position_x" (v "nid"));
                let_ "dy" (v "yi" -.: ld "position_y" (v "nid"));
                let_ "dz" (v "zi" -.: ld "position_z" (v "nid"));
                let_ "r2"
                  ((v "dx" *.: v "dx")
                  +.: ((v "dy" *.: v "dy") +.: ((v "dz" *.: v "dz") +.: f 0.01)));
                let_ "pot" (f 1.0 /.: v "r2");
                let_ "fx" (v "fx" +.: (v "pot" *.: v "dx"));
                let_ "fy" (v "fy" +.: (v "pot" *.: v "dy"));
                let_ "fz" (v "fz" +.: (v "pot" *.: v "dz"));
              ];
            store "force_x" (v "a") (v "fx");
            store "force_y" (v "a") (v "fy");
            store "force_z" (v "a") (v "fz");
          ];
      ];
  }

let init name idx =
  match name with
  | "n_points" -> Kernel.Value.VI (2 + Bench_def.hash_int name idx ~bound:(max_points - 1))
  | "nl" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:knn_points)
  | "force_x" | "force_y" | "force_z" -> Kernel.Value.VF 0.0
  | _ -> Kernel.Value.VF (Bench_def.hash_float name idx *. 4.0)

let grid =
  Bench_def.make ~kernel:grid_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:128.0 ~max_outstanding:8 ~area_luts:22_000 ())
    ~init
    ~output_bufs:[ "force_x"; "force_y"; "force_z" ]
    ~description:"cell-grid Lennard-Jones forces, staged positions" ()

let knn =
  Bench_def.make ~kernel:knn_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:16.0 ~max_outstanding:1 ~area_luts:10_000 ())
    ~init
    ~output_bufs:[ "force_x"; "force_y"; "force_z" ]
    ~description:"neighbour-list Lennard-Jones forces, small batch" ()
