(** The complete MachSuite benchmark registry (Table 2's rows). *)

val all : Bench_def.t list
(** All 19 benchmarks in Table 2 order. *)

val find : string -> Bench_def.t
(** Lookup by name; raises [Not_found]. *)

val names : string list
