(* fft: two transform variants.

   - fft_strided: MachSuite's 512-point radix-2 DIT with strided butterflies
     over DRAM-resident data and table twiddles (Table 2: six 4096 B
     buffers).  Output is in bit-reversed order, as in MachSuite.
   - fft_transpose: a 256-point fast Walsh-Hadamard transform computed as a
     16x16 tile — stage, transform rows, transpose, transform rows, write
     back (Table 2: two 2048 B buffers).  MachSuite's variant uses complex
     twiddle ROMs inside the accelerator; the WHT keeps the identical
     stage/transpose memory behaviour without internal ROM state. *)

open Kernel.Ir

let n = 512

let strided_kernel =
  {
    name = "fft_strided";
    bufs =
      [
        buf "real" F64 n;
        buf "img" F64 n;
        buf ~writable:false "real_twid" F64 n;
        buf ~writable:false "img_twid" F64 n;
        buf "work_real" F64 n;
        buf "work_img" F64 n;
      ];
    scratch = [];
    body =
      [
        let_ "log" (i 0);
        let_ "span" (i (n / 2));
        while_ (v "span" >: i 0)
          [
            let_ "odd0" (v "span");
            while_ (v "odd0" <: i n)
              [
                let_ "odd" (bor (v "odd0") (v "span"));
                let_ "even" (bxor (v "odd") (v "span"));
                let_ "t_r" (ld "real" (v "even") +.: ld "real" (v "odd"));
                store "real" (v "odd") (ld "real" (v "even") -.: ld "real" (v "odd"));
                store "real" (v "even") (v "t_r");
                let_ "t_i" (ld "img" (v "even") +.: ld "img" (v "odd"));
                store "img" (v "odd") (ld "img" (v "even") -.: ld "img" (v "odd"));
                store "img" (v "even") (v "t_i");
                let_ "root" (band (shl (v "even") (v "log")) (i (n - 1)));
                when_ (v "root" <>: i 0)
                  [
                    let_ "rt" (ld "real_twid" (v "root"));
                    let_ "it" (ld "img_twid" (v "root"));
                    let_ "temp"
                      ((v "rt" *.: ld "real" (v "odd")) -.: (v "it" *.: ld "img" (v "odd")));
                    store "img" (v "odd")
                      ((v "rt" *.: ld "img" (v "odd")) +.: (v "it" *.: ld "real" (v "odd")));
                    store "real" (v "odd") (v "temp");
                  ];
                let_ "odd0" (v "odd" +: i 1);
              ];
            let_ "span" (shr (v "span") (i 1));
            let_ "log" (v "log" +: i 1);
          ];
        (* Scale pass into the work buffers (the benchmark's output copy). *)
        for_ "k" (i 0) (i n)
          [
            store "work_real" (v "k") (ld "real" (v "k") *.: f (1.0 /. float_of_int n));
            store "work_img" (v "k") (ld "img" (v "k") *.: f (1.0 /. float_of_int n));
          ];
      ];
  }

let strided_init name idx =
  let pi = 4.0 *. atan 1.0 in
  match name with
  | "real" | "img" -> Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5)
  | "real_twid" ->
      Kernel.Value.VF (cos (-2.0 *. pi *. float_of_int idx /. float_of_int n))
  | "img_twid" ->
      Kernel.Value.VF (sin (-2.0 *. pi *. float_of_int idx /. float_of_int n))
  | "work_real" | "work_img" -> Kernel.Value.VF 0.0
  | _ -> invalid_arg ("fft_strided init: " ^ name)

let side = 16
let m = side * side  (* 256 points *)

let wht_rows buffer =
  (* In-scratch fast Walsh-Hadamard transform of every length-16 row. *)
  [
    let_ "span" (i 1);
    while_ (v "span" <: i side)
      [
        for_ "row" (i 0) (i side)
          [
            let_ "o" (i 0);
            while_ (v "o" <: i side)
              [
                for_ "k" (i 0) (v "span")
                  [
                    let_ "p" ((v "row" *: i side) +: (v "o" +: v "k"));
                    let_ "q" (v "p" +: v "span");
                    let_ "a" (ld buffer (v "p"));
                    let_ "b" (ld buffer (v "q"));
                    store buffer (v "p") (v "a" +.: v "b");
                    store buffer (v "q") (v "a" -.: v "b");
                  ];
                let_ "o" (v "o" +: (v "span" *: i 2));
              ];
          ];
        let_ "span" (v "span" *: i 2);
      ];
  ]

let transpose_tile =
  [
    for_ "row" (i 0) (i side)
      [
        for_ "col" (i 0) (i side)
          [
            store "tile_t" ((v "col" *: i side) +: v "row")
              (ld "tile" ((v "row" *: i side) +: v "col"));
          ];
      ];
  ]

let transform_plane plane =
  [ memcpy ~dst:"tile" ~src:plane ~elems:(i m) ]
  @ wht_rows "tile" @ transpose_tile @ wht_rows "tile_t"
  @ [ memcpy ~dst:plane ~src:"tile_t" ~elems:(i m) ]

let transpose_kernel =
  {
    name = "fft_transpose";
    bufs = [ buf "work_x" F64 m; buf "work_y" F64 m ];
    scratch = [ buf "tile" F64 m; buf "tile_t" F64 m ];
    body = transform_plane "work_x" @ transform_plane "work_y";
  }

let strided =
  Bench_def.make ~kernel:strided_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:32.0 ~max_outstanding:8 ~area_luts:14_000 ())
    ~init:strided_init
    ~output_bufs:[ "real"; "img"; "work_real"; "work_img" ]
    ~description:"512-point radix-2 DIT FFT, strided butterflies in DRAM" ()

let transpose =
  Bench_def.make ~kernel:transpose_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:32.0 ~max_outstanding:8 ~area_luts:12_000 ())
    ~init:(fun name idx ->
      Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5))
    ~output_bufs:[ "work_x"; "work_y" ]
    ~description:"16x16 staged transform with transpose between row passes" ()
