(* viterbi: maximum-likelihood decoding of a 64-step observation sequence
   over a 64-state HMM in log space (Table 2: five buffers, 256 B..16384 B).
   Transition and emission matrices are staged into BRAM once; the 64x64
   inner max-reduction is massively unrolled by HLS — the other >1000x
   benchmark next to backprop. *)

open Kernel.Ir

let states = 64
let steps = 64

let kernel =
  {
    name = "viterbi";
    bufs =
      [
        buf ~writable:false "obs" I32 steps;
        buf ~writable:false "init" F64 states;
        buf ~writable:false "transition" F32 (states * states);
        buf ~writable:false "emission" F32 (states * states);
        buf "path" I32 steps;
      ];
    scratch =
      [
        buf "tr" F32 (states * states);
        buf "em" F32 (states * states);
        buf "prev" F64 states;
        buf "cur" F64 states;
        buf "bp" I32 (steps * states);
      ];
    body =
      [
        memcpy ~dst:"tr" ~src:"transition" ~elems:(i (states * states));
        memcpy ~dst:"em" ~src:"emission" ~elems:(i (states * states));
        for_ "rep" (i 0) (p "reps")
          [
            let_ "o0" (ld "obs" (i 0));
            for_ "s" (i 0) (i states)
              [
                store "prev" (v "s")
                  (ld "init" (v "s") +.: ld "em" ((v "s" *: i states) +: v "o0"));
              ];
            for_ "t" (i 1) (i steps)
              [
                let_ "o" (ld "obs" (v "t"));
                for_ "s2" (i 0) (i states)
                  [
                    let_ "best" (f (-1.0e30));
                    let_ "arg" (i 0);
                    for_ "s1" (i 0) (i states)
                      [
                        let_ "cand"
                          (ld "prev" (v "s1") +.: ld "tr" ((v "s1" *: i states) +: v "s2"));
                        when_ (v "cand" >.: v "best")
                          [ let_ "best" (v "cand"); let_ "arg" (v "s1") ];
                      ];
                    store "cur" (v "s2")
                      (v "best" +.: ld "em" ((v "s2" *: i states) +: v "o"));
                    store "bp" ((v "t" *: i states) +: v "s2") (v "arg");
                  ];
                for_ "s" (i 0) (i states) [ store "prev" (v "s") (ld "cur" (v "s")) ];
              ];
            (* Select the best final state and trace the path back. *)
            let_ "best" (f (-1.0e30));
            let_ "arg" (i 0);
            for_ "s" (i 0) (i states)
              [
                when_ (ld "prev" (v "s") >.: v "best")
                  [ let_ "best" (ld "prev" (v "s")); let_ "arg" (v "s") ];
              ];
            store "path" (i (steps - 1)) (v "arg");
            let_ "t" (i (steps - 1));
            while_ (v "t" >: i 0)
              [
                let_ "arg" (ld "bp" ((v "t" *: i states) +: v "arg"));
                store "path" (v "t" -: i 1) (v "arg");
                let_ "t" (v "t" -: i 1);
              ];
          ];
      ];
  }

let bench =
  Bench_def.make ~kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:2048.0 ~max_outstanding:16 ~area_luts:24_000 ())
    ~init:(fun name idx ->
      match name with
      | "obs" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:states)
      | "path" -> Kernel.Value.VI 0
      | "init" | "transition" | "emission" ->
          (* log-probabilities *)
          Kernel.Value.VF (log (Bench_def.hash_float name idx +. 0.01))
      | _ -> invalid_arg ("viterbi init: " ^ name))
    ~params:[ ("reps", Kernel.Value.VI 4) ]
    ~output_bufs:[ "path" ]
    ~description:"64-state, 64-step log-space Viterbi decode, staged HMM" ()
