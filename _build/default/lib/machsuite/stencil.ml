(* stencil: 2D 3x3 convolution over a 64x128 grid and 3D 7-point stencil over
   a 16x32x32 volume (Table 2: three buffers each; the filter/constant
   buffers are the 36 B and 8 B minima).

   stencil2d is synthesized naively — single outstanding access, every tap
   fetched from DRAM — which is why it lands below 1x speedup in Fig. 7. *)

open Kernel.Ir

let rows2 = 64
let cols2 = 128

let stencil2d_kernel =
  {
    name = "stencil2d";
    bufs =
      [
        buf ~writable:false "orig" F32 (rows2 * cols2);
        buf "sol" F32 (rows2 * cols2);
        buf ~writable:false "filter" F32 9;
      ];
    scratch = [];
    body =
      [
        for_ "r" (i 0) (i (rows2 - 2))
          [
            for_ "c" (i 0) (i (cols2 - 2))
              [
                let_ "sum" (f 0.0);
                for_ "k1" (i 0) (i 3)
                  [
                    for_ "k2" (i 0) (i 3)
                      [
                        let_ "sum"
                          (v "sum"
                          +.: (ld "filter" ((v "k1" *: i 3) +: v "k2")
                              *.: ld "orig"
                                    (((v "r" +: v "k1") *: i cols2)
                                    +: (v "c" +: v "k2"))));
                      ];
                  ];
                store "sol" (((v "r" +: i 1) *: i cols2) +: (v "c" +: i 1)) (v "sum");
              ];
          ];
      ];
  }

let hd = 16
let rd = 32
let cd = 32
let idx3 z y x = ((z *: i (rd * cd)) +: (y *: i cd)) +: x

let stencil3d_kernel =
  {
    name = "stencil3d";
    bufs =
      [
        buf ~writable:false "orig" F32 (hd * rd * cd);
        buf "sol" F32 (hd * rd * cd);
        buf ~writable:false "c" F32 2;
      ];
    scratch = [];
    body =
      [
        let_ "c0" (ld "c" (i 0));
        let_ "c1" (ld "c" (i 1));
        for_ "z" (i 1) (i (hd - 1))
          [
            for_ "y" (i 1) (i (rd - 1))
              [
                for_ "x" (i 1) (i (cd - 1))
                  [
                    let_ "acc"
                      (ld "orig" (idx3 (v "z" -: i 1) (v "y") (v "x"))
                      +.: (ld "orig" (idx3 (v "z" +: i 1) (v "y") (v "x"))
                          +.: (ld "orig" (idx3 (v "z") (v "y" -: i 1) (v "x"))
                              +.: (ld "orig" (idx3 (v "z") (v "y" +: i 1) (v "x"))
                                  +.: (ld "orig" (idx3 (v "z") (v "y") (v "x" -: i 1))
                                      +.: ld "orig" (idx3 (v "z") (v "y") (v "x" +: i 1)))))));
                    store "sol" (idx3 (v "z") (v "y") (v "x"))
                      ((v "c0" *.: ld "orig" (idx3 (v "z") (v "y") (v "x")))
                      +.: (v "c1" *.: v "acc"));
                  ];
              ];
          ];
      ];
  }

let init name idx =
  match name with
  | "sol" -> Kernel.Value.VF 0.0
  | _ -> Kernel.Value.VF (Bench_def.hash_float name idx -. 0.5)

let stencil2d =
  Bench_def.make ~kernel:stencil2d_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:32.0 ~max_outstanding:1 ~area_luts:11_000 ())
    ~init ~output_bufs:[ "sol" ]
    ~description:"3x3 convolution, every tap (incl. filter) fetched from DRAM" ()

let stencil3d =
  Bench_def.make ~kernel:stencil3d_kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:32.0 ~max_outstanding:4 ~area_luts:13_000 ())
    ~init ~output_bufs:[ "sol" ]
    ~description:"7-point 3D stencil over a 16x32x32 volume" ()
