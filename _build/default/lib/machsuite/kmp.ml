(* kmp: Knuth-Morris-Pratt string search of a 4-byte pattern in a 64824-byte
   text (Table 2: four buffers, 4 B..64824 B).  The failure table is built
   and then staged on-chip together with the pattern; the text streams
   through in long bursts — a bandwidth benchmark. *)

open Kernel.Ir

let pattern_len = 4
let text_len = 64824

let kernel =
  {
    name = "kmp";
    bufs =
      [
        buf ~writable:false "pattern" U8 pattern_len;
        buf ~writable:false "input" U8 text_len;
        buf "kmp_next" I32 pattern_len;
        buf "n_matches" I32 1;
      ];
    scratch = [ buf "pat" I32 pattern_len; buf "next" I32 pattern_len ];
    body =
      [
        for_ "q" (i 0) (i pattern_len) [ store "pat" (v "q") (ld "pattern" (v "q")) ];
        (* Failure function. *)
        store "next" (i 0) (i 0);
        let_ "k" (i 0);
        for_ "q" (i 1) (i pattern_len)
          [
            while_ ((v "k" >: i 0) &&: (ld "pat" (v "k") <>: ld "pat" (v "q")))
              [ let_ "k" (ld "next" (v "k" -: i 1)) ];
            when_ (ld "pat" (v "k") =: ld "pat" (v "q")) [ let_ "k" (v "k" +: i 1) ];
            store "next" (v "q") (v "k");
          ];
        for_ "q" (i 0) (i pattern_len)
          [ store "kmp_next" (v "q") (ld "next" (v "q")) ];
        (* Scan. *)
        let_ "q" (i 0);
        let_ "matches" (i 0);
        for_ "pos" (i 0) (i text_len)
          [
            let_ "c" (ld "input" (v "pos"));
            while_ ((v "q" >: i 0) &&: (ld "pat" (v "q") <>: v "c"))
              [ let_ "q" (ld "next" (v "q" -: i 1)) ];
            when_ (ld "pat" (v "q") =: v "c") [ let_ "q" (v "q" +: i 1) ];
            when_ (v "q" =: i pattern_len)
              [
                let_ "matches" (v "matches" +: i 1);
                let_ "q" (ld "next" (v "q" -: i 1));
              ];
          ];
        store "n_matches" (i 0) (v "matches");
      ];
  }

let bench =
  Bench_def.make ~kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:8.0 ~max_outstanding:8 ~area_luts:4_000 ())
    ~init:(fun name idx ->
      match name with
      | "pattern" | "input" ->
          (* A 4-symbol alphabet so the pattern occurs many times. *)
          Kernel.Value.VI (Bench_def.hash_int name idx ~bound:4)
      | "kmp_next" | "n_matches" -> Kernel.Value.VI 0
      | _ -> invalid_arg ("kmp init: " ^ name))
    ~output_bufs:[ "kmp_next"; "n_matches" ]
    ~description:"KMP search of a 4-byte pattern over a 63 KiB streamed text"
    ()
