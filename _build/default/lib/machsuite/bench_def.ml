type t = {
  name : string;
  kernel : Kernel.Ir.t;
  directives : Hls.Directives.t;
  init : string -> int -> Kernel.Value.t;
  params : (string * Kernel.Value.t) list;
  output_bufs : string list;
  description : string;
}

let make ~kernel ~directives ~init ?(params = []) ~output_bufs ~description () =
  (match Kernel.Ir.validate kernel with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Bench_def.make: " ^ msg));
  List.iter
    (fun name ->
      if not (List.exists (fun (b : Kernel.Ir.buf_decl) -> b.buf_name = name) kernel.bufs)
      then invalid_arg ("Bench_def.make: unknown output buffer " ^ name))
    output_bufs;
  { name = kernel.Kernel.Ir.name; kernel; directives; init; params; output_bufs;
    description }

(* SplitMix-style avalanche of (string hash, index) — pure and stable. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_raw name idx =
  let h = Int64.of_int (Hashtbl.hash name) in
  mix64 (Int64.add (Int64.mul h 0x9E3779B97F4A7C15L) (Int64.of_int idx))

let hash_float name idx =
  let u = Int64.shift_right_logical (hash_raw name idx) 11 in
  Int64.to_float u /. 9007199254740992.0

let hash_int name idx ~bound =
  assert (bound > 0);
  let u = Int64.shift_right_logical (hash_raw name idx) 1 in
  Int64.to_int (Int64.rem u (Int64.of_int bound))

(* Buffers narrower than the runtime's doubles/63-bit ints round on store in
   tagged memory; the reference run must round identically or golden
   comparison would be meaningless. *)
let narrow (elem : Kernel.Ir.elem) (value : Kernel.Value.t) : Kernel.Value.t =
  match (elem, value) with
  | F32, VF x -> VF (Int32.float_of_bits (Int32.bits_of_float x))
  | (U8 | I32 | I64 | F64), _ -> value
  | F32, VI _ -> value

let initial_array t (decl : Kernel.Ir.buf_decl) =
  Array.init decl.len (fun idx -> narrow decl.elem (t.init decl.buf_name idx))

let golden_cache : (string, (string * Kernel.Value.t array) list) Hashtbl.t =
  Hashtbl.create 32

let compute_golden t =
  let arrays =
    List.map
      (fun (decl : Kernel.Ir.buf_decl) -> (decl.buf_name, initial_array t decl))
      t.kernel.Kernel.Ir.bufs
  in
  let elem_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (d : Kernel.Ir.buf_decl) -> Hashtbl.add tbl d.buf_name d.elem)
      t.kernel.Kernel.Ir.bufs;
    fun name -> Hashtbl.find tbl name
  in
  let pure = Kernel.Interp.pure_machine ~bufs:arrays ~params:t.params () in
  let machine =
    { pure with
      Kernel.Interp.store =
        (fun name ~idx value -> pure.Kernel.Interp.store name ~idx (narrow (elem_of name) value))
    }
  in
  Kernel.Interp.run t.kernel machine;
  arrays

(* Goldens are pure functions of the benchmark definition; memoize per name
   (copied on return so callers cannot corrupt the cache). *)
let golden t =
  let arrays =
    match Hashtbl.find_opt golden_cache t.name with
    | Some arrays -> arrays
    | None ->
        let arrays = compute_golden t in
        Hashtbl.add golden_cache t.name arrays;
        arrays
  in
  List.map (fun (name, a) -> (name, Array.copy a)) arrays
