(* aes: block encryption over a 128-byte working buffer (Table 2: one 128 B
   buffer per instance).  MachSuite's AES is table-driven; tables do not fit
   the 128-byte DMA footprint of the paper's configuration, so this kernel is
   an ARX cipher (add-rotate-xor rounds over 32-bit words) with the same
   memory shape: stage the block into internal registers, many compute rounds,
   write back. *)

open Kernel.Ir

let words = 16
let rounds = 10

(* All arithmetic is masked to 32 bits so every engine computes identical
   values regardless of native word width. *)
let m32 e = band e (i 0xFFFF_FFFF)

let kernel =
  {
    name = "aes";
    bufs = [ buf "block" I64 words ];
    scratch = [ buf "st" I64 words ];
    body =
      [
        memcpy ~dst:"st" ~src:"block" ~elems:(i words);
        for_ "it" (i 0) (p "iters")
          [
            for_ "r" (i 0) (i rounds)
              [
                for_ "j" (i 0) (i words)
                  [
                    let_ "a" (ld "st" (v "j"));
                    let_ "b" (ld "st" ((v "j" +: i 1) %: i words));
                    let_ "x" (m32 (v "a" +: v "b"));
                    let_ "rot"
                      (m32 (bor (shl (v "b") (i 13)) (shr (v "b") (i 19))));
                    let_ "x" (bxor (v "x") (v "rot"));
                    store "st" (v "j") (m32 (v "x" +: (v "r" +: i 0x9E37)));
                  ];
              ];
          ];
        memcpy ~dst:"block" ~src:"st" ~elems:(i words);
      ];
  }

let bench =
  Bench_def.make ~kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:16.0 ~max_outstanding:4 ~area_luts:6_000 ())
    ~init:(fun name idx ->
      Kernel.Value.VI (Bench_def.hash_int name idx ~bound:0x1_0000_0000))
    ~params:[ ("iters", Kernel.Value.VI 64) ]
    ~output_bufs:[ "block" ]
    ~description:"ARX block cipher rounds over a 128-byte staged block"
    ()
