(* nw: Needleman-Wunsch global sequence alignment of two 128-symbol
   sequences (Table 2: six buffers, 512 B..66564 B).  The 129x129 score and
   direction matrices live in DRAM and stream out row by row; the traceback
   then pointer-chases back through the direction matrix. *)

open Kernel.Ir

let seq_len = 128
let dim = seq_len + 1  (* 129 *)
let gap_penalty = -1

(* Direction codes. *)
let d_diag = 0
let d_up = 1
let d_left = 2

let kernel =
  {
    name = "nw";
    bufs =
      [
        buf ~writable:false "seqA" I32 seq_len;
        buf ~writable:false "seqB" I32 seq_len;
        buf "alignedA" I32 (2 * seq_len);
        buf "alignedB" I32 (2 * seq_len);
        buf "m" I32 (dim * dim);
        buf "ptr" I32 (dim * dim);
      ];
    scratch =
      [ buf "sa" I32 seq_len; buf "sb" I32 seq_len;
        buf "prev_row" I32 dim; buf "cur_row" I32 dim ];
    body =
      [
        for_ "k" (i 0) (i seq_len)
          [
            store "sa" (v "k") (ld "seqA" (v "k"));
            store "sb" (v "k") (ld "seqB" (v "k"));
          ];
        (* Border row/column. *)
        for_ "col" (i 0) (i dim)
          [
            store "prev_row" (v "col") (v "col" *: i gap_penalty);
            store "m" (v "col") (v "col" *: i gap_penalty);
            store "ptr" (v "col") (i d_left);
          ];
        for_ "row" (i 1) (i dim)
          [
            store "cur_row" (i 0) (v "row" *: i gap_penalty);
            store "m" (v "row" *: i dim) (v "row" *: i gap_penalty);
            store "ptr" (v "row" *: i dim) (i d_up);
            for_ "col" (i 1) (i dim)
              [
                let_ "score" (i (-1));
                when_ (ld "sa" (v "row" -: i 1) =: ld "sb" (v "col" -: i 1))
                  [ let_ "score" (i 1) ];
                let_ "diag" (ld "prev_row" (v "col" -: i 1) +: v "score");
                let_ "up" (ld "prev_row" (v "col") +: i gap_penalty);
                let_ "left" (ld "cur_row" (v "col" -: i 1) +: i gap_penalty);
                let_ "best" (v "diag");
                let_ "dir" (i d_diag);
                when_ (v "up" >: v "best")
                  [ let_ "best" (v "up"); let_ "dir" (i d_up) ];
                when_ (v "left" >: v "best")
                  [ let_ "best" (v "left"); let_ "dir" (i d_left) ];
                store "cur_row" (v "col") (v "best");
                store "m" ((v "row" *: i dim) +: v "col") (v "best");
                store "ptr" ((v "row" *: i dim) +: v "col") (v "dir");
              ];
            for_ "col" (i 0) (i dim)
              [ store "prev_row" (v "col") (ld "cur_row" (v "col")) ];
          ];
        (* Traceback: dependent loads through the DRAM-resident ptr matrix. *)
        let_ "row" (i seq_len);
        let_ "col" (i seq_len);
        let_ "out" (i 0);
        while_ ((v "row" >: i 0) &&: (v "col" >: i 0))
          [
            let_ "dir" (ld "ptr" ((v "row" *: i dim) +: v "col"));
            if_ (v "dir" =: i d_diag)
              [
                store "alignedA" (v "out") (ld "sa" (v "row" -: i 1));
                store "alignedB" (v "out") (ld "sb" (v "col" -: i 1));
                let_ "row" (v "row" -: i 1);
                let_ "col" (v "col" -: i 1);
              ]
              [
                if_ (v "dir" =: i d_up)
                  [
                    store "alignedA" (v "out") (ld "sa" (v "row" -: i 1));
                    store "alignedB" (v "out") (i (-1));
                    let_ "row" (v "row" -: i 1);
                  ]
                  [
                    store "alignedA" (v "out") (i (-1));
                    store "alignedB" (v "out") (ld "sb" (v "col" -: i 1));
                    let_ "col" (v "col" -: i 1);
                  ];
              ];
            let_ "out" (v "out" +: i 1);
          ];
      ];
  }

let bench =
  Bench_def.make ~kernel
    ~directives:
      (Hls.Directives.make ~compute_ipc:16.0 ~max_outstanding:4 ~area_luts:9_000 ())
    ~init:(fun name idx ->
      match name with
      | "seqA" | "seqB" -> Kernel.Value.VI (Bench_def.hash_int name idx ~bound:4)
      (* -2 marks never-written alignment slots; -1 is an alignment gap. *)
      | "alignedA" | "alignedB" -> Kernel.Value.VI (-2)
      | _ -> Kernel.Value.VI 0)
    ~output_bufs:[ "m"; "ptr"; "alignedA"; "alignedB" ]
    ~description:"Needleman-Wunsch alignment with DRAM score matrix" ()
