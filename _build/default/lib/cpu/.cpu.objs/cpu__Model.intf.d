lib/cpu/model.mli: Cache Kernel Memops Tagmem
