lib/cpu/cache.mli:
