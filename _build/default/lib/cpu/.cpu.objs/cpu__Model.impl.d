lib/cpu/model.ml: Cache Cheri Hashtbl Kernel List Memops Printf Tagmem
