(** Deterministic pseudo-random number generation for reproducible experiments.

    The simulator never uses [Stdlib.Random]; every source of randomness is an
    explicitly-seeded [Rng.t] so that each experiment is replayable from its
    seed alone.  The generator is SplitMix64, which is small, fast and has
    well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)
