(** Plain-text rendering of the paper's tables and figures.

    The bench harness prints each reproduced table as an aligned text table and
    each figure as labelled rows (optionally with an ASCII bar), so the output
    can be diffed against EXPERIMENTS.md. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] renders an aligned table with a rule under the
    header.  Every row must have the same arity as the header. *)

val section : string -> string
(** A titled separator ("== title ==") used between experiments. *)

val bar : width:int -> max:float -> float -> string
(** [bar ~width ~max v] is a proportional ASCII bar for [v] in [\[0,max\]]. *)

val log_bar : width:int -> max:float -> float -> string
(** Like {!bar} but on a log10 scale, for speedup plots spanning decades.
    Values at or below 1.0 render as an empty bar. *)

val pct : float -> string
(** Format a ratio as a signed percentage, e.g. [0.014 -> "+1.40%"]. *)

val fixed : int -> float -> string
(** [fixed d v] formats with [d] decimals. *)
