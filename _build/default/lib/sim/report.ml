let table ~header rows =
  List.iter (fun r -> assert (List.length r = List.length header)) rows;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let rstrip full =
    let rec go i = if i > 0 && full.[i - 1] = ' ' then go (i - 1) else i in
    String.sub full 0 (go (String.length full))
  in
  let render_row row =
    List.mapi (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell) row
    |> String.concat "  " |> rstrip
  in
  let rule =
    List.map (fun w -> String.make w '-') widths |> String.concat "  "
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let section title = Printf.sprintf "\n== %s ==\n" title

let bar ~width ~max v =
  let v = if v < 0.0 then 0.0 else if v > max then max else v in
  let n = if max <= 0.0 then 0 else int_of_float (v /. max *. float_of_int width) in
  String.make n '#' ^ String.make (width - n) ' '

let log_bar ~width ~max v =
  if v <= 1.0 then String.make width ' '
  else
    let lv = log10 v and lm = log10 max in
    bar ~width ~max:lm lv

let pct r = Printf.sprintf "%+.2f%%" (r *. 100.0)

let fixed d v = Printf.sprintf "%.*f" d v
