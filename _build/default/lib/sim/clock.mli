(** The simulation clock.

    Everything in the simulated SoC shares one cycle counter.  Components
    advance it explicitly; there is no hidden global state, so two systems can
    be simulated side by side with independent clocks. *)

type t

val create : unit -> t
(** A clock at cycle 0. *)

val now : t -> int
(** Current cycle. *)

val advance : t -> int -> unit
(** [advance t n] moves the clock forward [n >= 0] cycles. *)

val advance_to : t -> int -> unit
(** [advance_to t c] moves the clock to cycle [c] if [c] is in the future;
    otherwise leaves it unchanged (time never goes backwards). *)

val reset : t -> unit
(** Back to cycle 0 (used between independent experiment runs). *)
