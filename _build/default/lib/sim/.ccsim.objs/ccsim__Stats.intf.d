lib/sim/stats.mli:
