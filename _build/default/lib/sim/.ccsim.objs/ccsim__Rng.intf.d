lib/sim/rng.mli:
