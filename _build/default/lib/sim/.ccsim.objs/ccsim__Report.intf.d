lib/sim/report.mli:
