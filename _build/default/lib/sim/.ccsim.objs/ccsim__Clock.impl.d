lib/sim/clock.ml:
