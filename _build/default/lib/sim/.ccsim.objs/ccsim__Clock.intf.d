lib/sim/clock.mli:
