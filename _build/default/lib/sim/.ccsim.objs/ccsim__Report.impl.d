lib/sim/report.ml: List Printf String
