type t = { mutable cycle : int }

let create () = { cycle = 0 }
let now t = t.cycle

let advance t n =
  assert (n >= 0);
  t.cycle <- t.cycle + n

let advance_to t c = if c > t.cycle then t.cycle <- c
let reset t = t.cycle <- 0
