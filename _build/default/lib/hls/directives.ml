type t = {
  compute_ipc : float;
  max_outstanding : int;
  fine_ports : bool;
  area_luts : int;
}

let default =
  { compute_ipc = 16.0; max_outstanding = 8; fine_ports = true; area_luts = 8_000 }

let make ?(compute_ipc = default.compute_ipc)
    ?(max_outstanding = default.max_outstanding)
    ?(fine_ports = default.fine_ports) ?(area_luts = default.area_luts) () =
  assert (compute_ipc > 0.0);
  assert (max_outstanding >= 1);
  { compute_ipc; max_outstanding; fine_ports; area_luts }
