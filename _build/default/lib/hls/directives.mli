(** HLS synthesis directives — the stand-in for Vitis HLS.

    The paper generates each benchmark's accelerator with Vitis HLS; the
    resulting hardware differs in parallelism, pipelining and memory-port
    organization.  Here those differences are captured as per-kernel
    directives that the accelerator model consumes.  They are performance/area
    knobs only: the protection model never depends on them (the CapChecker
    treats the accelerator as a black box behind its memory interface). *)

type t = {
  compute_ipc : float;
      (** sustained kernel-IR operations per cycle of the synthesized
          datapath (unroll × pipelining); CPUs are ~0.3-1, accelerators
          reach hundreds *)
  max_outstanding : int;
      (** streaming read requests in flight before the FU stalls *)
  fine_ports : bool;
      (** the accelerator exposes one memory port (or hardened interface
          metadata) per object — enables the CapChecker's Fine mode *)
  area_luts : int;  (** synthesized area of one FU instance *)
}

val default : t
(** A modest pipelined accelerator: ipc 16, 8 outstanding, fine ports,
    8k LUTs. *)

val make :
  ?compute_ipc:float ->
  ?max_outstanding:int ->
  ?fine_ports:bool ->
  ?area_luts:int ->
  unit ->
  t
