lib/hls/directives.mli:
