lib/hls/directives.ml:
