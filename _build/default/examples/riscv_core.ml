(* The instruction-level view: compile a kernel for the CHERI-RV64 core,
   look at the generated code, and watch the same buggy binary behave
   differently on the two targets — silent corruption on RV64, a precise
   capability trap on purecap.

   Run with: dune exec examples/riscv_core.exe *)

open Kernel.Ir

let dot_kernel =
  {
    name = "dot";
    bufs =
      [ buf ~writable:false "xs" F64 64; buf ~writable:false "ys" F64 64;
        buf "out" F64 1 ];
    scratch = [];
    body =
      [
        let_ "acc" (f 0.0);
        for_ "j" (i 0) (p "n")
          [ let_ "acc" (v "acc" +.: (ld "xs" (v "j") *.: ld "ys" (v "j"))) ];
        store "out" (i 0) (v "acc");
      ];
  }

let fresh () =
  let mem = Tagmem.Mem.create ~size:(1 lsl 20) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 20) - 4096) in
  (mem, heap)

let layout_of heap kernel =
  Memops.Layout.make
    (List.map
       (fun (decl : buf_decl) ->
         let bytes = buf_decl_bytes decl in
         let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
         { Memops.Layout.decl; base = Tagmem.Alloc.malloc heap ~align padded })
       kernel.bufs)

let () =
  let mem, heap = fresh () in
  let layout = layout_of heap dot_kernel in
  List.iter
    (fun name ->
      Memops.Layout.init_buffer mem
        (Memops.Layout.find layout name)
        (fun idx -> Kernel.Value.VF (float_of_int idx *. 0.5)))
    [ "xs"; "ys" ];

  (* 1. Show the purecap code the compiler emits. *)
  let program =
    Riscv.Codegen.compile ~target:Riscv.Codegen.Purecap_target ~layout
      ~scratch_base:0
      ~params:[ ("n", Kernel.Value.VI 64) ]
      dot_kernel
  in
  print_endline "First 18 instructions of the purecap dot product:";
  Riscv.Codegen.disassemble program
  |> String.split_on_char '\n'
  |> List.filteri (fun idx _ -> idx < 18)
  |> List.iter print_endline;
  Printf.printf "  ... (%d instructions total)\n\n" (Array.length program.insns);

  (* 2. Run it with a benign parameter. *)
  let run target n =
    let mem, heap = fresh () in
    let layout = layout_of heap dot_kernel in
    List.iter
      (fun name ->
        Memops.Layout.init_buffer mem
          (Memops.Layout.find layout name)
          (fun idx -> Kernel.Value.VF (float_of_int idx *. 0.5)))
      [ "xs"; "ys" ];
    let r =
      Riscv.Exec.run_kernel ~target ~mem ~heap ~layout
        ~params:[ ("n", Kernel.Value.VI n) ]
        dot_kernel
    in
    let out = Memops.Layout.find layout "out" in
    (r.Riscv.Exec.machine, Tagmem.Mem.read_f64 mem ~addr:out.Memops.Layout.base)
  in
  let m, dot = run Riscv.Codegen.Purecap_target 64 in
  Printf.printf "dot(xs, ys) over 64 elements = %g (%d instructions, %d cycles)\n\n"
    dot m.Riscv.Machine.instructions m.Riscv.Machine.cycles;

  (* 3. The classic bug: the host passes n = 80 for 64-element vectors. *)
  let rv64, _ = run Riscv.Codegen.Rv64_target 80 in
  (match rv64.Riscv.Machine.trap with
  | None ->
      print_endline
        "RV64 with n=80: ran to completion, silently reading past both arrays"
  | Some t -> Printf.printf "RV64 with n=80: unexpected trap %s\n" t.Riscv.Machine.reason);
  let purecap, _ = run Riscv.Codegen.Purecap_target 80 in
  match purecap.Riscv.Machine.trap with
  | Some t ->
      Printf.printf "purecap with n=80: trap at instruction %d: %s\n"
        t.Riscv.Machine.pc t.Riscv.Machine.reason
  | None -> print_endline "purecap with n=80: !? no trap"
