(* Quickstart: build the paper's headline system (CHERI CPU + CapChecker in
   Fine mode), offload a matrix multiply to a CHERI-unaware accelerator, and
   watch the CapChecker do its two jobs: stay out of the way of legal DMA,
   and stop an out-of-bounds access dead.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A heterogeneous system: CHERI-RV64 CPU, 8 accelerator instances,
        a 256-entry CapChecker on the DMA path. *)
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  let result = Soc.Run.run ~tasks:1 Soc.Config.ccpu_caccel bench in
  Printf.printf "offloaded %s: %d cycles (alloc %d / init %d / compute %d / teardown %d)\n"
    result.Soc.Run.benchmark result.Soc.Run.wall result.Soc.Run.phases.Soc.Run.alloc
    result.Soc.Run.phases.Soc.Run.init result.Soc.Run.phases.Soc.Run.compute
    result.Soc.Run.phases.Soc.Run.teardown;
  Printf.printf "functionally correct vs reference semantics: %b\n" result.Soc.Run.correct;
  Printf.printf "DMA transactions checked: %d, denied: %d\n\n" result.Soc.Run.checks
    (List.length result.Soc.Run.denials);

  (* 2. The same offload on the baseline CPU, for the speedup headline. *)
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu bench in
  Printf.printf "CPU-only compute: %d cycles -> accelerator speedup %.1fx\n\n"
    cpu.Soc.Run.phases.Soc.Run.compute
    (float_of_int cpu.Soc.Run.phases.Soc.Run.compute
    /. float_of_int result.Soc.Run.phases.Soc.Run.compute);

  (* 3. Now a buggy (or malicious) kernel: same accelerator, but one index
        runs past its buffer.  The CapChecker blocks the access, raises its
        exception flag, and the driver scrubs and reports. *)
  let open Kernel.Ir in
  let buggy =
    {
      name = "buggy_copy";
      bufs = [ buf ~writable:false "src" I64 16; buf "dst" I64 16 ];
      scratch = [];
      body =
        [
          (* off-by-4096: classic CWE-787. *)
          for_ "j" (i 0) (i 16)
            [ store "dst" (v "j" +: i 4096) (ld "src" (v "j")) ];
        ];
    }
  in
  let sys = Soc.System.create Soc.Config.ccpu_caccel in
  let driver = Option.get sys.Soc.System.driver in
  let allocated =
    match Driver.allocate driver buggy with
    | Ok a -> a
    | Error msg -> failwith msg
  in
  let outcome =
    Accel.Engine.run ~mem:sys.Soc.System.mem ~guard:(Soc.System.guard sys)
      ~bus:sys.Soc.System.bus ~directives:Hls.Directives.default
      ~addressing:Accel.Engine.Fine_ports ~naive_tag_writes:false
      {
        Accel.Engine.instance = allocated.Driver.handle.Driver.task_id;
        kernel = buggy;
        layout = allocated.Driver.handle.Driver.layout;
        params = [];
        obj_ids = allocated.Driver.handle.Driver.obj_ids;
      }
  in
  (match outcome.Accel.Engine.denied with
  | Some denial ->
      Printf.printf "buggy kernel stopped by the CapChecker: %s\n"
        denial.Guard.Iface.detail
  | None -> print_endline "!? the out-of-bounds store was not caught");
  let report =
    Driver.deallocate driver allocated.Driver.handle
      ~denied:outcome.Accel.Engine.denied
  in
  Printf.printf "driver teardown: exception_seen=%b, scrubbed %d bytes\n"
    report.Driver.exception_seen report.Driver.scrubbed_bytes
