(* The paper's motivating example (Figure 2): a confidential video-decoder
   task shares the accelerator with a malicious "eavesdropper" task.

   Three systems side by side:
   - a naively integrated CHERI system (ccpu+accel): the eavesdropper steals
     the frame AND can forge a capability by overwriting tagged memory;
   - an IOMMU system: cross-task theft is blocked at page granularity, but
     intra-page overreads are invisible to it;
   - the CapChecker system: pointer-level compartmentalization.

   Run with: dune exec examples/eavesdropper.exe *)

open Security

let attempt title protection =
  Printf.printf "== %s ==\n" title;
  let steal = Attacks.overread_cross_task protection in
  Printf.printf "  eavesdropper reads the session frame: %s\n"
    (Attacks.outcome_to_string steal);
  let tamper = Attacks.overwrite_cross_task protection in
  Printf.printf "  eavesdropper overwrites the frame:    %s\n"
    (Attacks.outcome_to_string tamper);
  let forge = Attacks.forge_capability protection in
  Printf.printf "  eavesdropper rewrites a capability:   %s\n"
    (Attacks.outcome_to_string forge);
  let slop = Attacks.overread_page_slop protection in
  Printf.printf "  intra-page out-of-object read:        %s\n\n"
    (Attacks.outcome_to_string slop)

let () =
  print_endline "A video-call decoder task holds a confidential frame; a";
  print_endline "concurrent task on another functional unit tries to steal it.\n";
  attempt "CHERI CPU + unguarded accelerator (Figure 1a)" Soc.Config.Prot_naive;
  attempt "IOMMU-protected accelerator (Figure 1b)" Soc.Config.Prot_iommu;
  attempt "CapChecker, Fine mode (Figure 1d)" Soc.Config.Prot_cc_fine;
  (* And the worst-case Coarse deployment: cross-task still safe. *)
  let own, cross = Attacks.coarse_object_id_forge () in
  print_endline "== CapChecker, Coarse mode (no per-object ports) ==";
  Printf.printf "  forged object id, own task's other buffer: %s\n"
    (Attacks.outcome_to_string own);
  Printf.printf "  forged object id, the decoder's frame:     %s\n"
    (Attacks.outcome_to_string cross);
  print_endline
    "\nThe interconnect source id cannot be forged from software, so even\n\
     Coarse mode compartmentalizes tasks; Fine mode compartmentalizes objects."
