examples/quickstart.mli:
