examples/eavesdropper.mli:
