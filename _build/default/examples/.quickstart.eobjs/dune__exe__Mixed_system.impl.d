examples/mixed_system.ml: Capchecker List Machsuite Printf Security Soc String
