examples/tinyml_cfu.mli:
