examples/tinyml_cfu.ml: Capchecker Hls Kernel Machsuite Printf Security Soc
