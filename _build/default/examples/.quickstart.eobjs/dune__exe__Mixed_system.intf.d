examples/mixed_system.mli:
