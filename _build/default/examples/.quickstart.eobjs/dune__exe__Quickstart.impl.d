examples/quickstart.ml: Accel Driver Guard Hls Kernel List Machsuite Option Printf Soc
