examples/riscv_core.mli:
