examples/eavesdropper.ml: Attacks Printf Security Soc
