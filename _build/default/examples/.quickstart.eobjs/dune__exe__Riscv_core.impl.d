examples/riscv_core.ml: Array Cheri Kernel List Memops Printf Riscv String Tagmem
