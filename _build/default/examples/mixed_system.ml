(* A realistic SoC with eight different accelerators (Figure 9's setting):
   one crypto block, one neural-network trainer, one decoder, sorters,
   stencils — all behind a single shared CapChecker, each user's task
   compartmentalized from the others.

   Run with: dune exec examples/mixed_system.exe *)

let picks =
  [ "aes"; "backprop"; "viterbi"; "sort_radix"; "stencil3d"; "gemm_ncubed";
    "kmp"; "spmv_ellpack" ]

let () =
  let benches = List.map Machsuite.Registry.find picks in
  Printf.printf "Mixed SoC: %s\n\n" (String.concat ", " picks);
  let base = Soc.Run.run_mixed Soc.Config.ccpu_accel benches in
  let cc = Soc.Run.run_mixed Soc.Config.ccpu_caccel benches in
  Printf.printf "all tasks functionally correct: %b (unguarded) / %b (CapChecker)\n"
    base.Soc.Run.correct cc.Soc.Run.correct;
  Printf.printf "wall clock: %d cycles unguarded, %d with the CapChecker (%+.2f%%)\n"
    base.Soc.Run.wall cc.Soc.Run.wall
    ((float_of_int cc.Soc.Run.wall /. float_of_int base.Soc.Run.wall -. 1.0) *. 100.);
  Printf.printf "capability-table entries in use at peak: %d of 256\n"
    cc.Soc.Run.entries_peak;
  Printf.printf "DMA transactions checked: %d\n" cc.Soc.Run.checks;
  Printf.printf "system area: %d LUTs (CapChecker %d)\n" cc.Soc.Run.area_luts
    (Capchecker.Area.luts ~entries:256);
  Printf.printf "estimated power: %.0f mW\n" cc.Soc.Run.power_mw;
  (* Show that isolation held while they all ran together: rerun the
     cross-task attack in this very configuration. *)
  let steal = Security.Attacks.overread_cross_task Soc.Config.Prot_cc_fine in
  Printf.printf "\nconcurrent cross-task theft attempt: %s\n"
    (Security.Attacks.outcome_to_string steal)
