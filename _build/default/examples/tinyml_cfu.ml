(* The TinyML corner of the design space (§6.3): a microcontroller with a
   single custom functional unit (CFU) accelerating a small matrix multiply.
   The whole system is ~10k LUTs, and the CapChecker shrinks with it: a
   lightweight 4-entry variant costs under 100 LUTs while still providing
   pointer-level protection for the CFU's three buffers.

   Run with: dune exec examples/tinyml_cfu.exe *)

open Kernel.Ir

let n = 8  (* an 8x8 int8-style matmul CFU *)

let cfu_kernel =
  {
    name = "cfu_matmul";
    bufs =
      [ buf ~writable:false "a" I32 (n * n); buf ~writable:false "b" I32 (n * n);
        buf "c" I32 (n * n) ];
    scratch = [];
    body =
      [
        for_ "row" (i 0) (i n)
          [
            for_ "col" (i 0) (i n)
              [
                let_ "acc" (i 0);
                for_ "k" (i 0) (i n)
                  [
                    let_ "acc"
                      (v "acc"
                      +: (ld "a" ((v "row" *: i n) +: v "k")
                         *: ld "b" ((v "k" *: i n) +: v "col")));
                  ];
                store "c" ((v "row" *: i n) +: v "col") (v "acc");
              ];
          ];
      ];
  }

let () =
  let bench =
    Machsuite.Bench_def.make ~kernel:cfu_kernel
      ~directives:
        (Hls.Directives.make ~compute_ipc:8.0 ~max_outstanding:2 ~area_luts:1_800 ())
      ~init:(fun name idx ->
        Kernel.Value.VI (Machsuite.Bench_def.hash_int name idx ~bound:128))
      ~output_bufs:[ "c" ]
      ~description:"8x8 integer matmul CFU" ()
  in
  (* A 4-entry CapChecker is plenty: the CFU task holds three pointers. *)
  let result =
    Soc.Run.run ~tasks:1 ~instances:1 ~cc_entries:4 Soc.Config.ccpu_caccel bench
  in
  Printf.printf "CFU matmul: %d cycles, correct=%b, %d DMA checks, %d entries used\n"
    result.Soc.Run.wall result.Soc.Run.correct result.Soc.Run.checks
    result.Soc.Run.entries_peak;
  let cfu_luts = 1_800 in
  let core_luts = 8_000 (* a small RV32-class microcontroller core *) in
  let cc_luts = Capchecker.Area.luts_lightweight ~entries:4 in
  Printf.printf "area budget: core %d + CFU %d + CapChecker %d = %d LUTs\n"
    core_luts cfu_luts cc_luts (core_luts + cfu_luts + cc_luts);
  Printf.printf "lightweight CapChecker under 100 LUTs: %b (%d)\n" (cc_luts < 100)
    cc_luts;
  (* Protection still works at this scale. *)
  let steal = Security.Attacks.overread_same_task_object Soc.Config.Prot_cc_fine in
  Printf.printf "cross-object overread on the small system: %s\n"
    (Security.Attacks.outcome_to_string steal)
